"""Concurrent multi-episode friending engine over a datagram network.

The paper's typical scenario (Table VII) assumes many users friending
*simultaneously* in one network.  This engine runs N overlapping episodes --
each its own initiator, request package and metrics -- through a single
:class:`~repro.network.events.EventQueue` over one shared set of
:class:`~repro.network.simulator.Node` objects.

The unit of transmission is a **datagram**: every hop carries the encoded
frame bytes (``docs/wire_format.md``), pushed through the network's
:class:`~repro.network.channel_model.ChannelModel`, and every receiving
node learns what it knows by decoding those bytes.  Concretely:

- a broadcast puts one request frame per neighbour on the channel, which
  may drop, duplicate, delay or corrupt each copy independently;
- a receiving node validates the envelope (corrupted frames fail the CRC
  and are rejected, counted per episode), dedupes against its bounded
  :class:`~repro.network.sessions.SessionTable`, hands the decoded package
  to its participant, and forwards with the envelope TTL decremented;
- replies are encoded once and hop back as frames, deduplicated at the
  initiator endpoint (duplicate-frame idempotence);
- initiators whose requests go unanswered re-broadcast up to ``retries``
  retransmission *waves* (envelope seq); nodes forward each wave at most
  once without re-processing, so a wave heals loss holes at flood cost
  but never double-replies.

How an episode spends that reliability budget is a pluggable, named
strategy (:mod:`repro.network.reliability`): ``simple`` is the blind
re-flood above, byte-frozen; ``stage`` re-floods on an escalating
timetable; ``window`` ships replies as per-element segment frames and
re-sends only the segments the initiator is still missing; and
``window_fec`` adds XOR parity segments so lost elements are
reconstructed with no retransmission at all.  Under the segmented modes
each episode additionally fires one :class:`SegmentFlushEvent` when the
initiator's reply window closes, delivering partial element sets for
responders whose replies never completed.

Per-episode results carry the usual :class:`NetworkMetrics` (the paper's
payload accounting plus the new frame-layer counters); the engine
additionally reports aggregate throughput and reply-latency percentiles.

Determinism: with the default :class:`PerfectChannel` a run is
byte-identical (matches, wire elements, metrics) to the pre-datagram
object-passing engine (pinned by ``tests/network/test_engine_golden.py``);
with a lossy channel every frame's fate is a pure function of
``(channel seed, flow, link, seq)``, so runs reproduce from (seed, spec)
alone and ``run_parallel`` shards equal sequential runs.  The fate
*derivation* is version-gated (``ChannelModel(version=...)``: 1 scratch-MT,
2 counter-mode keystream); the engine is agnostic -- it hands the channel
the same keys either way, and both planes keep the pure-function property,
so the sharding identity holds under every (version, backend) combination.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from itertools import islice

from repro.core.exceptions import SerializationError
from repro.core.protocols import Initiator, MatchRecord, Reply
from repro.core.request import RequestPackage
from repro.core.wire import (
    FRAME_HEADER_LEN,
    FT_REPLY,
    FT_REPLY_SEG,
    FT_REQUEST,
    Frame,
    ReplySegment,
    decode_frame,
    decode_reply,
    decode_reply_segment,
    encode_reply_frame,
    encode_request_frame,
    encode_segment_frame,
    reframe,
    reply_wire_size,
)
from repro.crypto.backend import current_backend, set_backend
from repro.network.events import (
    BroadcastEvent,
    DeliveryEvent,
    EventQueue,
    FrameEvent,
    ReplyHopEvent,
    RetransmitEvent,
    SegmentFlushEvent,
    TopologyRefreshEvent,
)
from repro.network.metrics import AggregateMetrics, NetworkMetrics, percentile
from repro.network.reliability import (
    ReliabilityMode,
    fec_parity_elements,
    fec_reconstruct,
    load_reliability_mode,
)
from repro.network.simulator import (
    REPLY_ELEMENT_BYTES,
    REPLY_OVERHEAD_BYTES,
    AdHocNetwork,
)

__all__ = ["EpisodeSpec", "EpisodeResult", "EngineResult", "FriendingEngine",
           "DEFAULT_RETRANSMIT_TIMEOUT_MS", "DEFAULT_DECODE_CACHE_CAP",
           "DEFAULT_REJECT_CACHE_CAP"]

DEFAULT_RETRANSMIT_TIMEOUT_MS = 1_000

# Decode-cache bounds (docs/robustness.md).  Closed-world runs -- the 10k
# lossy-city goldens included -- stay far below the default caps, so bounding
# never evicts there and every golden is byte-identical by construction; an
# open-world soak is what the caps exist for.
DEFAULT_DECODE_CACHE_CAP = 1 << 16
DEFAULT_REJECT_CACHE_CAP = 1 << 10


class _BoundedCache(dict):
    """A dict with an LRU-style size cap (insertion-age eviction).

    Lookups stay native ``dict.get`` -- zero hit-path cost.  When an insert
    finds the cache full, the oldest quarter is evicted in one sweep:
    flood-workload keys (request datagrams, reply frames) age with their
    episodes, so insertion age tracks recency closely enough that per-hit
    reordering would buy nothing and cost the hot path plenty.
    """

    __slots__ = ("cap",)

    def __init__(self, cap: int):
        if cap < 4:
            raise ValueError("cache cap must be >= 4")
        super().__init__()
        self.cap = cap

    def put(self, key, value) -> None:
        if len(self) >= self.cap:
            for stale in list(islice(iter(self), self.cap // 4)):
                del self[stale]
        self[key] = value


@dataclass(frozen=True)
class EpisodeSpec:
    """One episode to schedule: who initiates, from where, and when.

    ``start_ms`` is simulated milliseconds on the engine's shared clock;
    the episode's request package is created (and its validity window
    anchored) at that instant.
    """

    initiator_node: str
    initiator: Initiator
    start_ms: int = 0


@dataclass
class EpisodeResult:
    """Outcome of one episode inside a multi-episode run."""

    episode: int
    initiator_node: str
    initiator: Initiator
    started_at_ms: int
    completed_at_ms: int
    metrics: NetworkMetrics
    replies: list[Reply] = field(default_factory=list)

    @property
    def matches(self) -> list[MatchRecord]:
        return list(self.initiator.matches)

    @property
    def matched_ids(self) -> list[str]:
        return [m.responder_id for m in self.initiator.matches]


@dataclass
class EngineResult:
    """All episodes of one engine run plus the aggregate view."""

    episodes: list[EpisodeResult]
    aggregate: AggregateMetrics
    completed_at_ms: int
    topology_refreshes: int = 0
    region_restarts: int = 0


class _SegmentState:
    """Reassembly state for one responder's segmented reply (initiator side)."""

    __slots__ = ("n_data", "window", "sent_at_ms", "data", "parity")

    def __init__(self, n_data: int, window: int, sent_at_ms: int):
        self.n_data = n_data
        self.window = window
        self.sent_at_ms = sent_at_ms
        self.data: dict[int, bytes] = {}
        self.parity: dict[int, bytes] = {}


class _Episode:
    """Mutable in-flight state of one episode (the initiator endpoint)."""

    __slots__ = ("spec", "index", "package", "package_bytes", "rid", "flow",
                 "frame", "metrics", "replies", "last_event_ms",
                 "seen_responders", "seg_rx", "seg_sent", "degraded")

    def __init__(self, spec: EpisodeSpec, index: int, wire: bool):
        self.spec = spec
        self.index = index
        self.package = spec.initiator.create_request(now_ms=spec.start_ms)
        self.package_bytes = self.package.wire_size_bytes()
        self.rid = self.package.request_id
        # The request flood's channel-model flow id, built once: every
        # broadcast of every wave reuses this exact bytes object.
        self.flow = self.rid + b"Q"
        # The request is encoded exactly once; relays patch only the
        # envelope's routing bytes, so the payload on the air is identical
        # at every hop.  In the object-passing baseline the "frame" is the
        # un-serialized envelope dataclass carrying the package itself.
        if wire:
            self.frame = encode_request_frame(self.package)
        else:
            self.frame = Frame(FT_REQUEST, self.package,
                               ttl=self.package.ttl, seq=0)
        self.metrics = NetworkMetrics()
        self.replies: list[Reply] = []
        self.last_event_ms = spec.start_ms
        self.seen_responders: set[str] = set()
        # Segmented reliability modes only: per-responder reassembly state
        # at the initiator endpoint, and the sender-side record of encoded
        # data-segment frames (what a selective wave re-sends).
        self.seg_rx: dict[str, _SegmentState] = {}
        self.seg_sent: dict[str, tuple[str, int, dict[int, bytes]]] = {}
        # Set once (never cleared) when the initiator departs or crashes
        # mid-episode: the endpoint stops accepting, replies in flight are
        # counted as orphaned, and retransmit timers die quietly.
        self.degraded = False


def _run_episode_shard(
    network: AdHocNetwork,
    indexed_specs: list[tuple[int, EpisodeSpec]],
    until_ms: int | None,
    backend_name: str,
    retries: int,
    retransmit_timeout_ms: int,
    wire: bool,
    reliability: "str | ReliabilityMode" = "simple",
) -> tuple[list[EpisodeResult], int]:
    """Worker-process entry point: run one shard of episodes sequentially.

    *network* arrives as this process's private pickled copy (channel model
    included), so shards never share mutable state.  Episode indices are
    restored to their position in the caller's spec list before results
    travel back.  The reliability mode pickles as plain field data (or a
    registry name) and is resolved worker-side.
    """
    set_backend(backend_name)
    engine = FriendingEngine(
        network, retries=retries, retransmit_timeout_ms=retransmit_timeout_ms,
        wire=wire, reliability=reliability,
    )
    result = engine.run([spec for _, spec in indexed_specs], until_ms=until_ms)
    for (original_index, _), episode in zip(indexed_specs, result.episodes):
        episode.episode = original_index
    return result.episodes, result.completed_at_ms


class FriendingEngine:
    """Schedules overlapping friending episodes over one `AdHocNetwork`.

    All times are simulated milliseconds (``start_ms``, ``until_ms``,
    latencies, refresh intervals); aggregate throughput is reported in
    episodes per simulated second.  Wall-clock time never enters the
    simulation, so a run is deterministic given seeded initiator and
    participant RNGs: the same specs over the same network (and the same
    channel model) produce bit-identical event orders, metrics and match
    sets, and N overlapping episodes match N isolated runs episode-for-
    episode (``tests/network/test_engine.py::TestDeterminism``).

    Parameters
    ----------
    network:
        The shared node set, channel model and latency parameters.
    mobility / radio_radius / refresh_interval_ms:
        When all three are given, the engine steps *mobility* every
        *refresh_interval_ms* of simulated time and rewires the network
        from a unit-disk snapshot at *radio_radius* (unit-square widths) --
        episodes launched before a refresh finish flooding over the new
        links.  Models exposing ``topology_delta`` (the grid-backed ones in
        :mod:`repro.network.mobility`) are refreshed incrementally: only
        the adjacency rows disturbed by motion are rewired.
    retries / retransmit_timeout_ms:
        Initiator-side reliability budget: when an episode has received no
        reply *retransmit_timeout_ms* after a (re)broadcast, the origin
        floods a fresh retransmission wave, up to *retries* times.
        ``retries=0`` (the default) is exactly the old single-shot
        behaviour.
    reliability:
        Named strategy deciding how that budget is spent -- ``"simple"``
        (default; blind re-floods at a constant timeout, byte-identical
        to the pre-strategy engine), ``"stage"`` (re-floods with the
        timeout doubling per wave), ``"window"`` (segmented replies,
        waves re-send only missing segments) or ``"window_fec"``
        (segmented replies with XOR parity, no waves).  A
        :class:`~repro.network.reliability.ReliabilityMode` instance is
        accepted too; unknown names raise ``ValueError``.  The segmented
        modes require the wire runtime.
    frame_tap:
        Optional callable ``(src, dst, data: bytes)`` invoked for every
        datagram copy the channel delivers -- the global-eavesdropper hook
        (:class:`repro.attacks.eavesdrop.Eavesdropper.capture`).  Requires
        the wire runtime.
    wire:
        ``False`` selects the object-passing baseline: identical event
        flow and metrics but no serialization, no channel perturbation
        (the channel must be perfect) and no tap.  It exists so
        ``benchmarks/bench_wire_runtime.py`` can price the codec; real
        runs keep the default.
    """

    def __init__(
        self,
        network: AdHocNetwork,
        *,
        mobility=None,
        radio_radius: float | None = None,
        refresh_interval_ms: int | None = None,
        retries: int = 0,
        retransmit_timeout_ms: int = DEFAULT_RETRANSMIT_TIMEOUT_MS,
        reliability: str | ReliabilityMode = "simple",
        frame_tap=None,
        wire: bool = True,
        decode_cache_cap: int = DEFAULT_DECODE_CACHE_CAP,
        reject_cache_cap: int = DEFAULT_REJECT_CACHE_CAP,
    ):
        if (mobility is None) != (refresh_interval_ms is None):
            raise ValueError("mobility and refresh_interval_ms must be given together")
        if mobility is not None and radio_radius is None:
            raise ValueError("topology refresh needs a radio_radius")
        if refresh_interval_ms is not None and refresh_interval_ms <= 0:
            raise ValueError("refresh interval must be positive")
        if not 0 <= retries <= 255:
            raise ValueError(
                "retries must be in [0, 255]: one envelope byte names the wave"
            )
        if retransmit_timeout_ms <= 0:
            raise ValueError("retransmit_timeout_ms must be positive")
        self.reliability = load_reliability_mode(reliability)
        if not wire:
            if not network.channel.is_perfect:
                raise ValueError(
                    "the object-passing baseline cannot apply a lossy channel; "
                    "use wire=True"
                )
            if frame_tap is not None:
                raise ValueError("frame_tap requires the wire runtime (wire=True)")
            if self.reliability.segmented:
                raise ValueError(
                    f"reliability mode {self.reliability.name!r} ships replies as "
                    "segment frames and requires the wire runtime (wire=True)"
                )
        self.network = network
        self.mobility = mobility
        self.radio_radius = radio_radius
        self.refresh_interval_ms = refresh_interval_ms
        self.retries = retries
        self.retransmit_timeout_ms = retransmit_timeout_ms
        self.frame_tap = frame_tap
        self.wire = wire
        if decode_cache_cap < 4 or reject_cache_cap < 4:
            raise ValueError("decode/reject cache caps must be >= 4")
        self.decode_cache_cap = decode_cache_cap
        self.reject_cache_cap = reject_cache_cap
        self.topology_refreshes = 0
        self.region_restarts = 0
        self._episodes: list[_Episode | None] = []
        self._queue: EventQueue | None = None
        self._pending_episode_events = 0
        self._refresh_horizon_ms = 0
        self._package_cache = _BoundedCache(decode_cache_cap)
        self._frame_cache = _BoundedCache(decode_cache_cap)
        self._reject_cache = _BoundedCache(reject_cache_cap)
        # Open-world churn state (begin()/step()/inject()): departed node
        # ids, per-episode in-flight event counts (the retirement gate),
        # retired episode results, and run-level churn accounting.
        self._open_world = False
        self._first_start = 0
        self._departed: set[str] = set()
        self._pending_by_episode: dict[int, int] = {}
        self._retired: dict[int, EpisodeResult] = {}
        self.churn_metrics = NetworkMetrics()
        # Event dispatch jump table: one dict lookup on the exact event
        # type replaces the old isinstance chain on the hot path.  The
        # engine only ever schedules these concrete types.
        self._handlers = {
            DeliveryEvent: self._on_delivery,
            BroadcastEvent: self._on_broadcast,
            ReplyHopEvent: self._on_reply_hop,
            FrameEvent: self._on_frame,
            RetransmitEvent: self._on_retransmit,
            SegmentFlushEvent: self._on_segment_flush,
            TopologyRefreshEvent: self._on_topology_refresh,
        }

    # -- public API ---------------------------------------------------------

    def run_staggered(
        self,
        launches: list[tuple[str, Initiator]],
        *,
        arrival_ms: int = 50,
        start_ms: int = 0,
        until_ms: int | None = None,
        workers: int = 1,
    ) -> EngineResult:
        """Launch one episode per ``(node, initiator)`` pair, *arrival_ms* apart.

        *workers* > 1 shards the episodes across processes via
        :meth:`run_parallel` instead of interleaving them in one queue.
        """
        specs = [
            EpisodeSpec(initiator_node=node, initiator=initiator,
                        start_ms=start_ms + i * arrival_ms)
            for i, (node, initiator) in enumerate(launches)
        ]
        if workers > 1:
            return self.run_parallel(specs, workers=workers, until_ms=until_ms)
        return self.run(specs, until_ms=until_ms)

    def run(self, specs: list[EpisodeSpec], *, until_ms: int | None = None) -> EngineResult:
        """Run every episode to completion (or *until_ms*) in one queue."""
        first_start = self._setup_run(specs, until_ms)
        self._queue.run(until_ms=until_ms)
        return self._collect_results(first_start)

    def _make_queue(self, first_start: int):
        """Build the run's event queue (seam for the region-sharded engine)."""
        return EventQueue(first_start)

    def _reset_run_state(self, first_start: int) -> None:
        """Fresh per-run state: queue, caches, counters, churn accounting."""
        self._queue = self._make_queue(first_start)
        self.topology_refreshes = 0
        self.region_restarts = 0
        self._pending_episode_events = 0
        self._package_cache = _BoundedCache(self.decode_cache_cap)
        self._frame_cache = _BoundedCache(self.decode_cache_cap)
        self._reject_cache = _BoundedCache(self.reject_cache_cap)
        self._open_world = False
        self._first_start = first_start
        self._departed = set()
        self._pending_by_episode = {}
        self._retired = {}
        self.churn_metrics = NetworkMetrics()

    def _admit_episode(self, episode: _Episode, origin_ms: int) -> None:
        """Open the origin session and schedule one episode's root events.

        *origin_ms* is the queue's zero point for the delays: the run's
        ``first_start`` during setup, the current clock for an
        :meth:`inject`.  The call order (session, broadcast, wave-1 timer,
        segment flush) is byte-frozen -- closed-world goldens depend on it.
        """
        # The initiator's own node never re-processes its own request:
        # its session exists from the start (hops 0, no parent).
        origin = self.network.nodes[episode.spec.initiator_node]
        origin.sessions.open(
            episode.rid, parent=None, hops=0,
            expires_ms=episode.package.expiry_ms,
            now_ms=episode.spec.start_ms,
        )
        self._schedule(
            episode.spec.start_ms - origin_ms,
            BroadcastEvent(episode.index, episode.spec.initiator_node,
                           episode.frame),
        )
        if self.retries > 0 and self.reliability.waves:
            # Wave 1 fires one base timeout after the initial broadcast
            # in every mode (backoff**0 == 1), so ``simple`` schedules
            # the exact pre-strategy value.
            self._schedule(
                episode.spec.start_ms - origin_ms
                + self.reliability.wave_delay_ms(1, self.retransmit_timeout_ms),
                RetransmitEvent(episode.index, attempt=1),
            )
        if self.reliability.segmented:
            # Reply-window close: deliver partial segment sets for
            # responders whose replies never completed.  The window
            # check in ``handle_reply`` is strict (>), so a flush at
            # exactly the boundary is still accepted.
            self._schedule(
                episode.spec.start_ms - origin_ms
                + episode.spec.initiator.reply_window_ms,
                SegmentFlushEvent(episode.index),
            )

    def _setup_run(self, specs: list[EpisodeSpec], until_ms: int | None) -> int:
        """Validate specs, build episode state, schedule every root event."""
        if not specs:
            raise ValueError("need at least one episode")
        for spec in specs:
            if spec.initiator_node not in self.network.nodes:
                raise ValueError(f"unknown initiator node {spec.initiator_node!r}")

        first_start = min(spec.start_ms for spec in specs)
        self._reset_run_state(first_start)
        self._episodes = [_Episode(spec, i, self.wire) for i, spec in enumerate(specs)]

        for episode in self._episodes:
            self._admit_episode(episode, first_start)

        if self.mobility is not None:
            self._schedule_refreshes(first_start, until_ms)
        return first_start

    # -- open-world lifecycle (begin / step / inject / churn) ----------------

    def begin(self, specs: list[EpisodeSpec] | tuple[EpisodeSpec, ...] = (),
              *, start_ms: int = 0) -> None:
        """Enter open-world mode: admit *specs* (possibly none) and stop.

        Nothing executes until :meth:`step`; episodes and nodes can then be
        injected at any simulated time (:meth:`inject`, :meth:`join_node`,
        :meth:`leave_node`, :meth:`crash_node`) and the run ends with
        :meth:`finish`.  The closed-world :meth:`run` path is untouched --
        with zero churn actions, ``begin + step...+ finish`` is
        byte-identical to ``run`` (pinned by
        ``tests/network/test_engine_step.py``).

        Open-world mode drives its own population dynamics through churn,
        so a mobility model (whose refresh timer assumes a run-to-drain
        queue) is rejected.
        """
        if self.mobility is not None:
            raise ValueError(
                "open-world stepping does not support a mobility model; "
                "churn supplies the population dynamics"
            )
        specs = list(specs)
        for spec in specs:
            if spec.initiator_node not in self.network.nodes:
                raise ValueError(f"unknown initiator node {spec.initiator_node!r}")
        first_start = start_ms
        if specs:
            first_start = min(first_start, min(spec.start_ms for spec in specs))
        self._reset_run_state(first_start)
        self._episodes = []
        self._open_world = True
        # Admissions here use the ordinary setup root context (exactly like
        # _setup_run); only mid-run inject() needs the special root keys of
        # the region-sharded engine.
        for i, spec in enumerate(specs):
            episode = _Episode(spec, i, self.wire)
            self._episodes.append(episode)
            self._admit_episode(episode, first_start)

    def step(self, until_ms: int | None = None) -> int:
        """Execute events up to *until_ms* (inclusive); return the count.

        Settled episodes (no in-flight events, start time reached) are
        retired on the way out: their results are finalized and their
        flood state -- reply-dedup sets, segment reassembly buffers,
        sender-side segment records -- is freed, which is what bounds an
        hours-long soak.
        """
        if not self._open_world:
            raise RuntimeError("step() requires begin() first")
        executed = self._queue.run(until_ms=until_ms)
        self._retire_settled()
        return executed

    def finish(self) -> EngineResult:
        """Drain every remaining event and assemble the final result."""
        if not self._open_world:
            raise RuntimeError("finish() requires begin() first")
        self.step(None)
        result = self._collect_results(self._first_start)
        self._open_world = False
        return result

    def inject(self, spec: EpisodeSpec) -> int:
        """Admit a new episode mid-run; returns its episode index.

        ``spec.start_ms`` must not be in the simulated past, and the
        initiator node must be present (joined and not departed).
        """
        if not self._open_world:
            raise RuntimeError("inject() requires begin() first")
        if spec.initiator_node not in self.network.nodes:
            raise ValueError(f"unknown initiator node {spec.initiator_node!r}")
        if spec.initiator_node in self._departed:
            raise ValueError(f"initiator node {spec.initiator_node!r} has departed")
        now_ms = self._queue.now_ms
        if spec.start_ms < now_ms:
            raise ValueError(
                f"cannot inject an episode starting at {spec.start_ms} ms: "
                f"the clock is already at {now_ms} ms"
            )
        episode = _Episode(spec, len(self._episodes), self.wire)
        self._episodes.append(episode)
        self._begin_roots()
        self._admit_episode(episode, now_ms)
        self._end_roots()
        return episode.index

    def join_node(self, node_id: str, participant=None,
                  neighbours: list[str] | tuple[str, ...] = (), *,
                  position: tuple[float, float] | None = None):
        """A node arrives (brand new) or wakes (previously departed).

        A waking node keeps whatever session state survived its sleep (a
        crash wiped it already).  *position* is required by the
        region-sharded engine to home the joiner; the sequential engine
        accepts and ignores it, so churn drivers call both identically.
        """
        if not self._open_world:
            raise RuntimeError("join_node() requires begin() first")
        network = self.network
        if node_id in network.nodes:
            if node_id not in self._departed:
                raise ValueError(f"node {node_id!r} is already present")
            self._departed.discard(node_id)
            network.attach_node(node_id, neighbours)
        else:
            # A brand-new id -- or a forgotten one being reused, which
            # re-enters as a fresh arrival.
            self._departed.discard(node_id)
            network.add_node(node_id, participant, neighbours)
        self.churn_metrics.nodes_joined += 1
        self._note_joined(node_id, position)

    def leave_node(self, node_id: str, *, crash: bool = False) -> None:
        """A node departs: detached from the mesh, deliveries to it dropped.

        With ``crash=True`` the node also loses its volatile state (session
        table, rate limiter).  Episodes whose initiator departs are marked
        degraded: their endpoints stop accepting (later replies count as
        ``orphaned_replies``) and their retransmit timers die quietly, so
        the drain always completes.
        """
        if not self._open_world:
            raise RuntimeError("leave_node() requires begin() first")
        if node_id not in self.network.nodes:
            raise ValueError(f"unknown node {node_id!r}")
        if node_id in self._departed:
            raise ValueError(f"node {node_id!r} has already departed")
        self.network.detach_node(node_id)
        self._departed.add(node_id)
        if crash:
            self.network.reset_node_state(node_id)
            self.churn_metrics.nodes_crashed += 1
        else:
            self.churn_metrics.nodes_left += 1
        for episode in self._episodes:
            if episode is not None and not episode.degraded \
                    and episode.spec.initiator_node == node_id:
                episode.degraded = True
                episode.metrics.degraded_episodes += 1
                # Free the endpoint's reassembly state now; the flush event
                # (if any) finds nothing to deliver.
                episode.seg_rx.clear()
                episode.seg_sent.clear()

    def crash_node(self, node_id: str) -> None:
        """A node dies abruptly: departure plus session-state loss."""
        self.leave_node(node_id, crash=True)

    def forget_node(self, node_id: str) -> None:
        """Free a permanently-departed node's remaining state entirely.

        Only valid after the node departed.  The id stays in the
        departed set, so late deliveries and injections keep refusing
        it; what goes away is the Node shell (participant, session
        table, limiter history).  Callers that might wake the node
        later -- a crash with a sleep window booked -- must NOT forget
        it; the churn runner only forgets graceful leavers, for which
        it never books a wake.
        """
        if node_id not in self._departed:
            raise ValueError(f"node {node_id!r} has not departed")
        self.network.forget_node(node_id)

    def restart_region(self, region: int) -> int:
        """Sequential engines have no region workers to kill: a no-op.

        The region-sharded engine overrides this with a real
        kill-and-recover (:meth:`repro.network.regions.RegionShardedEngine.
        restart_region`); fault campaigns call it unconditionally.
        """
        return 0

    def _note_joined(self, node_id: str, position) -> None:
        """Seam: the region-sharded engine homes the joiner by position."""

    def _begin_roots(self) -> None:
        """Seam: the region-sharded engine opens an injection root context."""

    def _end_roots(self) -> None:
        """Seam: the region-sharded engine closes it and routes the outbox."""

    # -- open-world introspection -------------------------------------------

    @property
    def departed_nodes(self) -> frozenset[str]:
        return frozenset(self._departed)

    def live_episode_count(self) -> int:
        return sum(1 for episode in self._episodes if episode is not None)

    def retired_count(self) -> int:
        return len(self._retired)

    def episode_initiator_node(self, index: int) -> str | None:
        """Initiator node id of a live episode (None once retired)."""
        episode = self._episodes[index]
        return None if episode is None else episode.spec.initiator_node

    def open_horizon_ms(self) -> int:
        """Latest request-validity deadline across live episodes."""
        deadlines = [ep.package.expiry_ms for ep in self._episodes if ep is not None]
        return max(deadlines, default=self._queue.now_ms if self._queue else 0)

    def wedged_episodes(self, grace_ms: int = 60_000) -> list[int]:
        """Live episodes still holding events long past their validity window.

        An episode with in-flight events *within* its window is just in
        flight; one still pending *grace_ms* past expiry has a stuck timer
        or an orphaned event chain -- the soak harness asserts this list is
        empty.  (A fully drained queue can never leave a wedge: zero
        pending events retires the episode.)
        """
        now_ms = self._queue.now_ms
        pending = self._pending_by_episode
        return [
            episode.index
            for episode in self._episodes
            if episode is not None
            and pending.get(episode.index, 0) > 0
            and now_ms > episode.package.expiry_ms + grace_ms
        ]

    def _retire_settled(self) -> None:
        """Finalize and free every episode with zero in-flight events.

        Event genealogy is closed per episode (every event an episode's
        handler schedules belongs to that episode), so a zero pending
        count is a proof the episode can never be touched again.
        """
        pending = self._pending_by_episode
        episodes = self._episodes
        for idx, episode in enumerate(episodes):
            if episode is None:
                continue
            if pending.get(idx, 0) == 0:
                self._retired[idx] = self._episode_result(episode)
                episodes[idx] = None
                pending.pop(idx, None)

    @staticmethod
    def _episode_result(episode: _Episode) -> EpisodeResult:
        return EpisodeResult(
            episode=episode.index,
            initiator_node=episode.spec.initiator_node,
            initiator=episode.spec.initiator,
            started_at_ms=episode.spec.start_ms,
            completed_at_ms=episode.last_event_ms,
            metrics=episode.metrics,
            replies=episode.replies,
        )

    def _collect_results(self, first_start: int) -> EngineResult:
        """Assemble the :class:`EngineResult` after the queue has drained."""
        retired = self._retired
        episodes = [
            retired[idx] if ep is None else self._episode_result(ep)
            for idx, ep in enumerate(self._episodes)
        ]
        # Aggregate throughput runs to the last *episode* event: trailing
        # topology-refresh ticks keep the queue alive but do no episode work.
        last_episode_event = max(
            (ep.completed_at_ms for ep in episodes), default=first_start
        )
        return EngineResult(
            episodes=episodes,
            aggregate=self._aggregate(episodes, first_start, last_episode_event,
                                      extra=self.churn_metrics),
            completed_at_ms=self._queue.now_ms,
            topology_refreshes=self.topology_refreshes,
            region_restarts=self.region_restarts,
        )

    def run_parallel(
        self,
        specs: list[EpisodeSpec],
        *,
        workers: int,
        until_ms: int | None = None,
    ) -> EngineResult:
        """Shard episodes across *workers* processes; merge deterministically.

        Episodes are dealt round-robin to worker processes; each worker
        runs its shard through an ordinary :meth:`run` over a pickled
        copy of the network, and the merged result restores sequential
        episode order.  Given seeded per-episode initiator RNGs and
        seeded per-participant RNGs, concurrent episodes in one queue
        already equal the same episodes run in isolation
        (``tests/network/test_engine.py::TestDeterminism``), so sharding
        preserves results episode-for-episode: ``run_parallel(workers=4)``
        returns the same matches, metrics and aggregate as :meth:`run`
        (pinned by ``tests/network/test_engine_parallel.py``).  A lossy
        channel keeps this property because every frame's fate hashes
        from (seed, flow, link, seq), never from a shared RNG stream --
        under both fate planes: the pickled network carries the
        channel's ``version``, v2 workers recompute the same counter-mode
        streams, and the v2 digest caches are value-pure, so sharded
        lossy runs stay byte-identical to sequential ones.

        Differences from :meth:`run`:

        - episode state is mutated on *worker-side copies*: the caller's
          ``Initiator``/``Participant`` objects are untouched, and results
          must be read from the returned :class:`EpisodeResult`\\ s;
        - mid-run topology refresh is not supported (a refresh is a
          cross-episode side effect, which sharding removes) -- engines
          configured with a mobility model must use :meth:`run`;
        - the frame tap is not forwarded to workers (taps close over
          caller-side state); capture frames with a sequential run;
        - session-table overflow is cross-episode coupling too: shard
          results match sequential ones only while no node's table fills
          (see :mod:`repro.network.sessions`);
        - the active crypto backend's *name* is forwarded to workers, so
          sharded runs measure the same backend as sequential ones.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if self.mobility is not None:
            raise ValueError(
                "run_parallel does not support mid-run topology refresh; use run()"
            )
        if not specs:
            raise ValueError("need at least one episode")
        for spec in specs:
            if spec.initiator_node not in self.network.nodes:
                raise ValueError(f"unknown initiator node {spec.initiator_node!r}")
        workers = min(workers, len(specs))
        if workers == 1:
            return self.run(specs, until_ms=until_ms)

        indexed = list(enumerate(specs))
        shards = [indexed[w::workers] for w in range(workers)]
        backend_name = current_backend().name
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_episode_shard, self.network, shard, until_ms, backend_name,
                    self.retries, self.retransmit_timeout_ms, self.wire,
                    self.reliability,
                )
                for shard in shards
            ]
            outputs = [future.result() for future in futures]

        episodes = sorted(
            (episode for shard_episodes, _ in outputs for episode in shard_episodes),
            key=lambda episode: episode.episode,
        )
        first_start = min(spec.start_ms for spec in specs)
        last_episode_event = max(ep.completed_at_ms for ep in episodes)
        return EngineResult(
            episodes=episodes,
            aggregate=self._aggregate(episodes, first_start, last_episode_event),
            completed_at_ms=max(completed for _, completed in outputs),
            topology_refreshes=0,
        )

    # -- frame plumbing -----------------------------------------------------

    def _decode(self, data) -> Frame:
        """Envelope validation: bytes in, checked Frame out (or raises).

        Memoized on the exact datagram bytes: a broadcast delivers the
        same frame object to every neighbour and a relay's reframe output
        is value-identical across relays of the same (ttl, wave), so each
        distinct datagram pays the CRC walk once per run.  Corrupt
        datagrams go to a separate *negative* cache: link-layer duplicates
        of a corrupted copy re-reject without re-walking the CRC, and the
        bound keeps dead bytes from accumulating.  Both caches are
        size-capped (:class:`_BoundedCache`) and live for one run.
        """
        if isinstance(data, Frame):  # object-passing baseline
            return data
        frame = self._frame_cache.get(data)
        if frame is None:
            if data in self._reject_cache:
                raise SerializationError("datagram previously rejected (cached)")
            try:
                frame = decode_frame(data)
            except SerializationError:
                self._reject_cache.put(data, True)
                raise
            self._frame_cache.put(data, frame)
        return frame

    def _request_package(self, frame: Frame) -> RequestPackage:
        """Decode a request payload, memoized on the exact payload bytes.

        The payload is identical at every hop (relays patch only envelope
        routing bytes), so each distinct request decodes once per engine
        -- the cache key being the bytes keeps this transparent: any
        corruption changes the key and fails envelope validation first.
        """
        if isinstance(frame.payload, RequestPackage):
            return frame.payload
        package = self._package_cache.get(frame.payload)
        if package is None:
            package = RequestPackage.decode(frame.payload)
            self._package_cache.put(frame.payload, package)
        return package

    def _reframe(self, frame, *, ttl: int | None = None, seq: int | None = None):
        if isinstance(frame, Frame):
            updates = {}
            if ttl is not None:
                updates["ttl"] = ttl
            if seq is not None:
                updates["seq"] = seq
            return replace(frame, **updates)
        return reframe(frame, ttl=ttl, seq=seq)

    @staticmethod
    def _meta(frame) -> tuple[int, int]:
        """(ttl, seq) straight from the envelope without a full decode."""
        if isinstance(frame, Frame):
            return frame.ttl, frame.seq
        return frame[6], frame[7]

    def _transmit(
        self, episode: _Episode, frame, *, flow: bytes, link: tuple[str, str],
        seq: int, latency_ms: int, frame_len: int,
    ) -> list:
        """Push one datagram through the channel; account the frame layer."""
        deliveries = self.network.channel.transmit(
            frame, flow=flow, link=link, seq=seq, latency_ms=latency_ms
        )
        metrics = episode.metrics
        copies = len(deliveries)
        metrics.frames_sent += max(1, copies)
        metrics.frame_bytes += frame_len * max(1, copies)
        if copies == 0:
            metrics.frames_dropped += 1
        elif copies > 1:
            metrics.frames_duplicated += copies - 1
        for delivery in deliveries:
            if delivery.corrupted:
                metrics.frames_corrupted += 1
            if self.frame_tap is not None:
                self.frame_tap(link[0], link[1], delivery.data)
        return deliveries

    # -- event handling -----------------------------------------------------

    def _dispatch(self, event) -> None:
        cls = type(event)
        handler = self._handlers.get(cls)
        if handler is None:  # pragma: no cover -- the engine only schedules known types
            raise TypeError(f"unknown event {event!r}")
        if cls is not TopologyRefreshEvent:
            self._pending_episode_events -= 1
            if self._open_world:
                self._pending_by_episode[event.episode] -= 1
        handler(event)

    def _schedule(self, delay_ms: int, event) -> None:
        """Queue an episode event (counted against the refresh horizon).

        Without a mobility model or open-world stepping the in-flight
        counters are dead weight: events then go straight to their
        handler, skipping the dispatch hop entirely.  Open-world mode
        additionally counts per episode -- the retirement gate.
        """
        if self._open_world:
            self._pending_episode_events += 1
            pending = self._pending_by_episode
            pending[event.episode] = pending.get(event.episode, 0) + 1
            self._queue.schedule(delay_ms, self._dispatch, event)
        elif self.mobility is not None:
            self._pending_episode_events += 1
            self._queue.schedule(delay_ms, self._dispatch, event)
        else:
            self._queue.schedule(delay_ms, self._handlers[type(event)], event)

    def _schedule_refresh_event(self, delay_ms: int, event: TopologyRefreshEvent) -> None:
        """Queue a topology tick without counting it as episode work."""
        self._queue.schedule(delay_ms, self._dispatch, event)

    def _on_broadcast(self, event: BroadcastEvent) -> None:
        """Flood one hop: draw every link's fate at once, batch deliveries.

        All per-neighbour channel fates are drawn in one
        :meth:`~repro.network.channel_model.ChannelModel.transmit_many`
        pass (bit-identical per-link values), and the resulting copies are
        aggregated into one :class:`DeliveryEvent` per arrival instant
        instead of one queue entry per copy.  Within a time bucket the
        receiver order is the per-link scheduling order, so execution
        order -- and therefore every golden-pinned result -- matches the
        old copy-at-a-time path exactly.
        """
        episode = self._episodes[event.episode]
        if self._departed and event.node in self._departed:
            # The transmitter left or crashed before this (re)broadcast
            # fired: nothing goes on the air.
            return
        node = self.network.nodes[event.node]
        metrics = episode.metrics
        metrics.broadcasts += 1
        metrics.bytes_broadcast += episode.package_bytes
        episode.last_event_ms = self._queue.now_ms
        frame = event.frame
        _, wave = self._meta(frame)
        neighbours = node.neighbours
        if not neighbours:
            return
        frame_len = FRAME_HEADER_LEN + episode.package_bytes
        fates = self.network.channel.transmit_many(
            frame, flow=episode.flow, src=event.node, dsts=neighbours,
            seq=wave, latency_ms=self.network.hop_latency_ms,
        )
        tap = self.frame_tap
        frames_sent = 0
        dropped = 0
        duplicated = 0
        corrupted = 0
        groups: dict[int, list[tuple[str, object]]] = {}
        groups_get = groups.get
        for neighbour, deliveries in zip(neighbours, fates):
            copies = len(deliveries)
            if copies == 0:
                frames_sent += 1
                dropped += 1
                continue
            frames_sent += copies
            if copies > 1:
                duplicated += copies - 1
            for delay_ms, data, was_corrupted in deliveries:
                if was_corrupted:
                    corrupted += 1
                if tap is not None:
                    tap(event.node, neighbour, data)
                group = groups_get(delay_ms)
                if group is None:
                    group = groups[delay_ms] = []
                group.append((neighbour, data))
        metrics.frames_sent += frames_sent
        metrics.frame_bytes += frame_len * frames_sent
        if dropped:
            metrics.frames_dropped += dropped
        if duplicated:
            metrics.frames_duplicated += duplicated
        if corrupted:
            metrics.frames_corrupted += corrupted
        for delay_ms, batch in groups.items():
            self._schedule(
                delay_ms,
                DeliveryEvent(event.episode, event.node, tuple(batch)),
            )

    def _on_delivery(self, event: DeliveryEvent) -> None:
        """Process every copy of one broadcast arriving at this instant.

        The batch shares one decode per distinct datagram (untouched
        copies are literally the same bytes object; corruption forks a
        private one) and then runs the per-receiver protocol handling in
        the batch's scheduling order.
        """
        episode = self._episodes[event.episode]
        episode.last_event_ms = self._queue.now_ms
        metrics = episode.metrics
        nodes = self.network.nodes
        from_node = event.from_node
        departed = self._departed
        last_data: object = None
        frame = None
        package = None
        rid = b""
        seq = 0
        for node_id, data in event.deliveries:
            if departed and node_id in departed:
                # The receiver left or crashed while this copy was on the
                # air: the radio copy reaches nobody.
                continue
            if data is not last_data:
                last_data = data
                try:
                    frame = self._decode(data)
                    if frame.ftype != FT_REQUEST:
                        raise SerializationError(
                            f"unexpected frame type {frame.ftype} on flood"
                        )
                    package = self._request_package(frame)
                except SerializationError:
                    # Corrupted or malformed on the air: dropped whole.
                    frame = None
                else:
                    rid = package.request_id
                    seq = frame.seq
            if frame is None:
                metrics.frames_rejected += 1
                continue
            node = nodes[node_id]
            session = node.sessions.lookup(rid)
            if session is not None and seq <= session.last_seq:
                # The overwhelmingly common flood outcome -- the node has
                # already served this request and this is just another
                # neighbour's copy -- handled inline, before the call.
                metrics.dropped_duplicate += 1
                continue
            self._handle_request_copy(
                episode, node, node_id, from_node, frame, package, session, data
            )

    def _on_frame(self, event: FrameEvent) -> None:
        """Single-copy compatibility path: a batch of one."""
        self._on_delivery(
            DeliveryEvent(event.episode, event.from_node,
                          ((event.node, event.data),))
        )

    def _handle_request_copy(
        self, episode: _Episode, node, node_id: str, from_node: str,
        frame: Frame, package: RequestPackage, session, data,
    ) -> None:
        """A request copy that is not a plain duplicate: process or forward.

        *session* is the node's existing session for this request id (the
        caller already looked it up), or None on first contact.  A non-None
        session with a stale wave mark never reaches this method -- the
        duplicate drop happens inline at the delivery loop.
        """
        queue = self._queue
        rid = package.request_id
        if session is not None:
            # Session exists and frame.seq > session.last_seq: a fresh
            # retransmission wave to relay without re-processing.
            self._forward_wave(episode, node, node_id, from_node,
                               frame, package, session, data)
            return
        if package.is_expired(queue.now_ms):
            episode.metrics.dropped_expired += 1
            return
        if not node.limiter.allow(from_node, queue.now_ms):
            episode.metrics.dropped_rate_limited += 1
            return
        # Hop count derives from the bytes: initial TTL minus what remains.
        hops = package.ttl - frame.ttl + 1
        session = node.sessions.open(
            rid, parent=from_node, hops=hops,
            expires_ms=package.expiry_ms, now_ms=queue.now_ms,
        )
        if session is None:
            episode.metrics.sessions_overflow += 1
            return
        session.last_seq = frame.seq
        episode.metrics.nodes_reached += 1

        participant = node.participant
        if participant is not None:
            reply = participant.handle_request(package, now_ms=queue.now_ms)
            outcome = participant.last_outcome
            if outcome is not None and outcome.candidate:
                episode.metrics.candidates += 1
            if reply is not None:
                episode.metrics.replies += 1
                self._send_reply(episode, reply, node_id, hops)
        if frame.ttl > 1:
            # Forward the *datagram* (data), not the decoded view: the
            # relay patches the envelope TTL on the received bytes.
            self._schedule(
                self.network.processing_latency_ms,
                BroadcastEvent(episode.index, node_id,
                               self._reframe(data, ttl=frame.ttl - 1)),
            )
        else:
            # TTL exhausted: the packet was received and fully processed
            # (the node may even have replied); what is dropped is the
            # re-broadcast that would otherwise go out -- count exactly one
            # suppression here, at the point of suppression.
            episode.metrics.dropped_ttl += 1

    def _forward_wave(
        self, episode, node, node_id: str, from_node: str,
        frame, package, session, data,
    ) -> None:
        """Forward a fresh retransmission wave without re-processing.

        The node already served this request (its session is open); a
        higher envelope seq means the origin re-flooded.  The node relays
        the wave exactly once -- patching nothing but its own wave mark --
        so retransmissions heal loss holes at flood cost, while the
        participant layer stays idempotent (it never sees the request
        again).

        The wave mark is only advanced once the copy survives the expiry
        and rate-limit checks: a rejected copy leaves state untouched, so
        a later copy of the same wave from another neighbour (whose
        limiter budget is intact) can still carry the wave onward --
        mirroring the first-contact path, where a rate-limited copy does
        not open the session.
        """
        if package.is_expired(self._queue.now_ms):
            episode.metrics.dropped_expired += 1
            return
        if not node.limiter.allow(from_node, self._queue.now_ms):
            episode.metrics.dropped_rate_limited += 1
            return
        session.last_seq = frame.seq
        if frame.ttl > 1:
            self._schedule(
                self.network.processing_latency_ms,
                BroadcastEvent(episode.index, node_id,
                               self._reframe(data, ttl=frame.ttl - 1)),
            )
        else:
            episode.metrics.dropped_ttl += 1

    def _send_reply(self, episode: _Episode, reply: Reply, via: str, hops: int) -> None:
        """Encode a participant's reply and start it hopping home."""
        n_elements = len(reply.elements)
        if self.reliability.segmented and n_elements:
            # Element-less replies (nothing to protect) keep the classic
            # single-frame path; the segment codec carries exactly one
            # element per frame.
            self._send_reply_segments(episode, reply, via, hops)
            return
        if self.wire:
            frame = encode_reply_frame(reply, ttl=min(hops, 255))
            frame_len = len(frame)
        else:
            frame = Frame(FT_REPLY, reply, ttl=min(hops, 255))
            frame_len = FRAME_HEADER_LEN + reply_wire_size(n_elements, reply.responder_id)
        self._schedule(
            self.network.processing_latency_ms,
            ReplyHopEvent(
                episode.index, frame, via, hops, n_elements, frame_len,
                flow=episode.rid + b"R" + reply.responder_id.encode("utf-8"),
            ),
        )

    @staticmethod
    def _segment_flow(
        rid: bytes, responder: bytes, is_parity: bool, index: int, attempt: int
    ) -> bytes:
        """Channel-model flow id for one segment transmission.

        Every (segment, retransmission attempt) pair gets its own flow, so
        each draws independent deterministic fates -- a re-sent segment is
        a fresh chance on the channel, not a replay of the original draw.
        """
        return (
            rid
            + b"S"
            + (b"\x01" if is_parity else b"\x00")
            + index.to_bytes(2, "big")
            + bytes((attempt,))
            + responder
        )

    def _send_reply_segments(
        self, episode: _Episode, reply: Reply, via: str, hops: int
    ) -> None:
        """Ship one reply as per-element segment frames (plus parity in FEC mode).

        Data segments go out in element order, then parity segments in
        window order, all at the same processing latency -- a fixed,
        deterministic schedule.  Under ``window`` mode the encoded data
        frames are recorded so a later selective wave can re-send exactly
        the ones the initiator reports missing.
        """
        mode = self.reliability
        elements = reply.elements
        n = len(elements)
        responder = reply.responder_id
        responder_bytes = responder.encode("utf-8")
        ttl = min(hops, 255)
        window = mode.fec_window
        segments = [
            ReplySegment(
                request_id=episode.rid, responder_id=responder,
                sent_at_ms=reply.sent_at_ms, seg_index=i, n_data=n,
                window=window, is_parity=False, element=element,
            )
            for i, element in enumerate(elements)
        ]
        if window:
            segments.extend(
                ReplySegment(
                    request_id=episode.rid, responder_id=responder,
                    sent_at_ms=reply.sent_at_ms, seg_index=w, n_data=n,
                    window=window, is_parity=True, element=parity,
                )
                for w, parity in enumerate(fec_parity_elements(elements, window))
            )
        record: dict[int, bytes] | None = {} if mode.selective_retx else None
        delay = self.network.processing_latency_ms
        for segment in segments:
            frame = encode_segment_frame(segment, ttl=ttl)
            if record is not None and not segment.is_parity:
                record[segment.seg_index] = frame
            self._schedule(
                delay,
                ReplyHopEvent(
                    episode.index, frame, via, hops, 1, len(frame),
                    flow=self._segment_flow(
                        episode.rid, responder_bytes,
                        segment.is_parity, segment.seg_index, 0,
                    ),
                ),
            )
        if record is not None:
            self._record_segments(episode, responder, via, hops, record)

    def _record_segments(
        self, episode: _Episode, responder: str, via: str, hops: int,
        record: dict[int, bytes],
    ) -> None:
        """Retain the sender-side segment record for selective waves.

        Seam for the region-sharded engine: there the responder and the
        initiator endpoint may live on different shard workers, so the
        record travels home as a :class:`SegmentRecordEvent` instead of a
        direct write (:mod:`repro.network.regions`).
        """
        episode.seg_sent[responder] = (via, hops, record)

    def _on_reply_hop(self, event: ReplyHopEvent) -> None:
        episode = self._episodes[event.episode]
        episode.last_event_ms = self._queue.now_ms
        if event.remaining_hops <= 0:
            self._deliver_reply(episode, event)
            return
        episode.metrics.unicasts += 1
        episode.metrics.bytes_unicast += (
            REPLY_OVERHEAD_BYTES + event.n_elements * REPLY_ELEMENT_BYTES
        )
        # The channel seq folds in the copy lineage so sibling copies of a
        # duplicated reply draw independent fates at every later hop
        # (otherwise duplication would be all-or-nothing redundancy).
        deliveries = self._transmit(
            episode, event.frame, flow=event.flow,
            link=(event.via, episode.spec.initiator_node),
            seq=event.remaining_hops + (event.copy << 8),
            latency_ms=self.network.hop_latency_ms,
            frame_len=event.frame_len,
        )
        for fork, delivery in enumerate(deliveries):
            self._schedule(
                delivery.delay_ms,
                ReplyHopEvent(event.episode, delivery.data, event.via,
                              event.remaining_hops - 1, event.n_elements,
                              event.frame_len, event.flow,
                              copy=event.copy * 2 + fork),
            )

    def _deliver_reply(self, episode: _Episode, event: ReplyHopEvent) -> None:
        """Initiator endpoint: validate, dedupe, and hand up one reply frame."""
        if episode.degraded:
            # The initiator departed mid-episode: the endpoint is gone, so
            # the reply falls on the floor -- counted, never matched.
            episode.metrics.orphaned_replies += 1
            return
        try:
            frame = self._decode(event.frame)
            if frame.ftype == FT_REPLY_SEG:
                segment = (
                    frame.payload
                    if isinstance(frame.payload, ReplySegment)
                    else decode_reply_segment(frame.payload)
                )
            elif frame.ftype == FT_REPLY:
                segment = None
                reply = frame.payload if isinstance(frame.payload, Reply) else decode_reply(frame.payload)
            else:
                raise SerializationError(f"unexpected frame type {frame.ftype} for a reply")
        except SerializationError:
            episode.metrics.frames_rejected += 1
            return
        if segment is not None:
            self._deliver_segment(episode, segment)
            return
        if reply.responder_id in episode.seen_responders:
            # Duplicate-frame idempotence: link-layer copies of a reply
            # reach the endpoint once.
            episode.metrics.duplicate_replies += 1
            return
        episode.seen_responders.add(reply.responder_id)
        episode.spec.initiator.handle_reply(reply, self._queue.now_ms)
        episode.metrics.reply_latency_ms.append(
            self._queue.now_ms - episode.spec.start_ms
        )
        episode.replies.append(reply)

    def _deliver_segment(self, episode: _Episode, segment: ReplySegment) -> None:
        """Initiator endpoint for one reply segment: store, reconstruct, deliver.

        Segments accumulate per responder; the reply is handed up the
        moment every data element is present -- received or reconstructed
        from XOR parity (counted as ``fec_recovered``).  Anything still
        incomplete when the reply window closes is delivered partially by
        :meth:`_on_segment_flush`.
        """
        metrics = episode.metrics
        if segment.request_id != episode.rid:
            metrics.frames_rejected += 1
            return
        responder = segment.responder_id
        if responder in episode.seen_responders:
            # The responder's reply is already delivered; late or duplicate
            # segment copies are endpoint-idempotent like duplicate replies.
            metrics.duplicate_replies += 1
            return
        state = episode.seg_rx.get(responder)
        if state is None:
            state = episode.seg_rx[responder] = _SegmentState(
                segment.n_data, segment.window, segment.sent_at_ms
            )
        if segment.n_data != state.n_data or segment.window != state.window:
            # Inconsistent geometry across one responder's segments: not a
            # well-formed reply stream.
            metrics.frames_rejected += 1
            return
        if segment.is_parity:
            if state.window == 0 or segment.seg_index * state.window >= state.n_data:
                metrics.frames_rejected += 1
                return
            store = state.parity
        else:
            if segment.seg_index >= state.n_data:
                metrics.frames_rejected += 1
                return
            store = state.data
        if segment.seg_index in store:
            metrics.duplicate_replies += 1
            return
        store[segment.seg_index] = segment.element
        completed, recovered = self._reassemble(state)
        if len(completed) == state.n_data:
            self._finish_segment_reply(episode, responder, state, completed, recovered)

    @staticmethod
    def _reassemble(state: _SegmentState) -> tuple[dict[int, bytes], list[int]]:
        """Received data plus whatever parity can reconstruct right now.

        Recovery is recomputed from the raw received sets on every attempt
        (nothing reconstructed is persisted), so ``fec_recovered`` counts
        each recovered element exactly once -- at delivery.
        """
        if state.window and state.parity:
            return fec_reconstruct(state.n_data, state.window, state.data, state.parity)
        return dict(state.data), []

    def _finish_segment_reply(
        self,
        episode: _Episode,
        responder: str,
        state: _SegmentState,
        completed: dict[int, bytes],
        recovered: list[int],
    ) -> None:
        """Hand one reassembled (possibly partial) reply up to the initiator."""
        reply = Reply(
            request_id=episode.rid,
            responder_id=responder,
            elements=tuple(completed[i] for i in sorted(completed)),
            sent_at_ms=state.sent_at_ms,
        )
        episode.seen_responders.add(responder)
        del episode.seg_rx[responder]
        episode.seg_sent.pop(responder, None)
        if recovered:
            episode.metrics.fec_recovered += len(recovered)
        episode.spec.initiator.handle_reply(reply, self._queue.now_ms)
        episode.metrics.reply_latency_ms.append(
            self._queue.now_ms - episode.spec.start_ms
        )
        episode.replies.append(reply)

    def _on_segment_flush(self, event: SegmentFlushEvent) -> None:
        """Reply-window close: deliver what arrived for unfinished responders.

        A partial element set now beats a complete set never -- the true
        acknowledging element may well be among the survivors, and the
        initiator's window check would refuse anything later anyway.
        """
        episode = self._episodes[event.episode]
        if episode.degraded:
            return
        delivered = False
        for responder in sorted(episode.seg_rx):
            state = episode.seg_rx[responder]
            completed, recovered = self._reassemble(state)
            if not completed:
                del episode.seg_rx[responder]
                continue
            self._finish_segment_reply(episode, responder, state, completed, recovered)
            delivered = True
        if delivered:
            episode.last_event_ms = self._queue.now_ms

    def _on_retransmit(self, event: RetransmitEvent) -> None:
        episode = self._episodes[event.episode]
        if episode.degraded:
            return  # the initiator is gone: the wave timer dies quietly
        mode = self.reliability
        if mode.selective_retx:
            self._on_selective_wave(episode, event)
            return
        if episode.replies:
            return  # answered: the timer dies quietly
        if episode.package.is_expired(self._queue.now_ms):
            return
        episode.metrics.retransmissions += 1
        episode.last_event_ms = self._queue.now_ms
        origin = self.network.nodes[episode.spec.initiator_node]
        session = origin.sessions.get(episode.rid)
        if session is not None:
            session.last_seq = event.attempt
        self._schedule(
            0,
            BroadcastEvent(
                event.episode, episode.spec.initiator_node,
                self._reframe(episode.frame, ttl=episode.package.ttl,
                              seq=event.attempt),
            ),
        )
        if event.attempt < self.retries:
            # ``simple`` (backoff 1.0) chains at exactly the base timeout,
            # preserving the pre-strategy schedule byte for byte.
            self._schedule(
                mode.wave_delay_ms(event.attempt + 1, self.retransmit_timeout_ms),
                RetransmitEvent(event.episode, attempt=event.attempt + 1),
            )

    def _on_selective_wave(self, episode: _Episode, event: RetransmitEvent) -> None:
        """``window``-mode wave: re-send only what the initiator is missing.

        The initiator knows exactly which data segments each partially
        heard responder still owes (its ``seg_rx`` holes); the wave
        re-sends those frames from the sender-side record along the
        recorded reply path, each with a fresh per-attempt flow (the
        simulation's stand-in for a NACK travelling upstream -- the
        engine is both endpoints, so the request round trip is elided).
        While *nothing* has been heard from anyone, the wave falls back
        to a full re-flood: there are no known holes to aim at yet.
        """
        now_ms = self._queue.now_ms
        if episode.package.is_expired(now_ms):
            return
        resent = 0
        for responder in sorted(episode.seg_rx):
            state = episode.seg_rx[responder]
            record = episode.seg_sent.get(responder)
            if record is None:  # pragma: no cover -- this engine sent them
                continue
            via, hops, frames = record
            responder_bytes = responder.encode("utf-8")
            for index in range(state.n_data):
                if index in state.data:
                    continue
                frame = frames[index]
                self._schedule(
                    0,
                    ReplyHopEvent(
                        episode.index, frame, via, hops, 1, len(frame),
                        flow=self._segment_flow(
                            episode.rid, responder_bytes, False, index,
                            event.attempt,
                        ),
                    ),
                )
                resent += 1
        if resent:
            episode.metrics.selective_retx += resent
            episode.last_event_ms = now_ms
        elif not episode.replies and not episode.seg_rx:
            # Total silence: no segment ever arrived, so there is nothing
            # to aim a selective wave at -- re-flood the request instead.
            episode.metrics.retransmissions += 1
            episode.last_event_ms = now_ms
            origin = self.network.nodes[episode.spec.initiator_node]
            session = origin.sessions.get(episode.rid)
            if session is not None:
                session.last_seq = event.attempt
            self._schedule(
                0,
                BroadcastEvent(
                    event.episode, episode.spec.initiator_node,
                    self._reframe(episode.frame, ttl=episode.package.ttl,
                                  seq=event.attempt),
                ),
            )
        else:
            # Every heard reply is complete and no re-flood is warranted:
            # the budget rests.
            return
        if event.attempt < self.retries:
            self._schedule(
                self.reliability.wave_delay_ms(
                    event.attempt + 1, self.retransmit_timeout_ms
                ),
                RetransmitEvent(event.episode, attempt=event.attempt + 1),
            )

    def _on_topology_refresh(self, event: TopologyRefreshEvent) -> None:
        self.mobility.step(event.interval_ms / 1000)
        # Prefer the incremental path: a grid-backed model hands back only
        # the adjacency rows the motion actually changed, so a refresh in a
        # 10k-node city costs O(moved neighbourhoods), not an O(n²) rescan.
        delta = getattr(self.mobility, "topology_delta", None)
        if delta is not None:
            changed = delta(self.radio_radius)
            if changed:
                self.network.update_topology(changed)
        else:
            self.network.update_topology(
                self.mobility.snapshot_topology(self.radio_radius)
            )
        self.topology_refreshes += 1
        # Re-arm only while episode work is still in flight and the horizon
        # allows: the queue must drain once the last flood/reply settles.
        if (
            self._pending_episode_events > 0
            and self._queue.now_ms + event.interval_ms <= self._refresh_horizon_ms
        ):
            self._schedule_refresh_event(event.interval_ms, event)

    def _schedule_refreshes(self, first_start: int, until_ms: int | None) -> None:
        horizon = until_ms
        if horizon is None:
            horizon = max(ep.package.expiry_ms for ep in self._episodes)
        self._refresh_horizon_ms = horizon
        interval = self.refresh_interval_ms
        if first_start + interval <= horizon:
            self._schedule_refresh_event(interval, TopologyRefreshEvent(interval))

    # -- aggregation --------------------------------------------------------

    @staticmethod
    def _aggregate(
        episodes: list[EpisodeResult], first_start: int, end_ms: int,
        extra: NetworkMetrics | None = None,
    ) -> AggregateMetrics:
        total = NetworkMetrics()
        if extra is not None:
            # Run-level churn accounting (joins/leaves/crashes are not
            # owned by any single episode); all-zero in closed-world runs.
            total.merge(extra)
        for episode in episodes:
            total.merge(episode.metrics)
        return AggregateMetrics(
            episodes=len(episodes),
            matches=sum(len(ep.initiator.matches) for ep in episodes),
            sim_duration_ms=end_ms - first_start,
            total=total,
            latency_p50_ms=percentile(total.reply_latency_ms, 50),
            latency_p95_ms=percentile(total.reply_latency_ms, 95),
        )
