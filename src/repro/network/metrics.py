"""Transmission and outcome accounting for simulated friending runs."""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

__all__ = ["AggregateMetrics", "NetworkMetrics", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of *values* (``0.0`` on empty input)."""
    if not 0 <= q <= 100:
        raise ValueError("percentile must be in [0, 100]")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100 * len(ordered)))
    return float(ordered[rank - 1])


@dataclass
class NetworkMetrics:
    """Counters accumulated over one simulated request's lifetime.

    A *broadcast* is one node transmitting the request package to all of
    its neighbours at once (the wireless medium is shared); a *unicast* is
    one hop of a reply travelling back towards the initiator.

    Two byte accountings coexist deliberately.  ``bytes_broadcast`` /
    ``bytes_unicast`` follow the paper's communication cost model (payload
    bytes, Table VII) and are unchanged by the datagram runtime.  The
    ``frames_*`` / ``frame_bytes`` counters account the datagram layer:
    one frame per link transmission, envelope included, with the channel
    model's drops, link-layer duplicates and in-flight corruption broken
    out.  ``frames_rejected`` counts frames an endpoint discarded at
    decode time (checksum or codec failure); ``duplicate_replies`` counts
    reply copies the initiator endpoint deduplicated; ``retransmissions``
    counts origin re-broadcast waves for unanswered requests; and
    ``sessions_overflow`` counts requests refused because a node's bounded
    session table was full.

    The segmented reliability modes add two recovery counters:
    ``selective_retx`` counts individual reply segments re-sent by a
    ``window``-mode wave (full re-flood waves still count under
    ``retransmissions``), and ``fec_recovered`` counts 48-byte reply
    elements the initiator reconstructed from XOR parity in
    ``window_fec`` mode instead of ever receiving.

    The open-world churn plane adds five degradation counters.
    ``nodes_joined`` / ``nodes_left`` / ``nodes_crashed`` count live
    population changes during a run (a crash is a departure that also
    loses the node's session table and rate-limiter state).
    ``degraded_episodes`` marks episodes whose initiator departed before
    the episode settled (at most 1 per episode), and ``orphaned_replies``
    counts reply or segment frames that arrived at such a departed
    initiator and were discarded instead of matched.
    """

    broadcasts: int = 0
    unicasts: int = 0
    bytes_broadcast: int = 0
    bytes_unicast: int = 0
    nodes_reached: int = 0
    candidates: int = 0
    replies: int = 0
    dropped_duplicate: int = 0
    dropped_ttl: int = 0
    dropped_expired: int = 0
    dropped_rate_limited: int = 0
    frames_sent: int = 0
    frames_dropped: int = 0
    frames_duplicated: int = 0
    frames_corrupted: int = 0
    frames_rejected: int = 0
    frame_bytes: int = 0
    duplicate_replies: int = 0
    retransmissions: int = 0
    selective_retx: int = 0
    fec_recovered: int = 0
    sessions_overflow: int = 0
    nodes_joined: int = 0
    nodes_left: int = 0
    nodes_crashed: int = 0
    orphaned_replies: int = 0
    degraded_episodes: int = 0
    reply_latency_ms: list[int] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """All bytes put on the air."""
        return self.bytes_broadcast + self.bytes_unicast

    def merge(self, other: "NetworkMetrics") -> None:
        """Accumulate *other* into this instance (engine-level aggregation).

        Every counter is owned by exactly one accumulator at a time — the
        engine's per-episode split and the region-sharded runtime's
        per-worker metrics both rely on each increment landing in exactly
        one operand, so merging in any grouping sums to the same totals.
        ``reply_latency_ms`` is order-sensitive: callers merge shards in
        a canonical order (episode order, region index order) so the
        concatenated list is reproducible.
        """
        self.broadcasts += other.broadcasts
        self.unicasts += other.unicasts
        self.bytes_broadcast += other.bytes_broadcast
        self.bytes_unicast += other.bytes_unicast
        self.nodes_reached += other.nodes_reached
        self.candidates += other.candidates
        self.replies += other.replies
        self.dropped_duplicate += other.dropped_duplicate
        self.dropped_ttl += other.dropped_ttl
        self.dropped_expired += other.dropped_expired
        self.dropped_rate_limited += other.dropped_rate_limited
        self.frames_sent += other.frames_sent
        self.frames_dropped += other.frames_dropped
        self.frames_duplicated += other.frames_duplicated
        self.frames_corrupted += other.frames_corrupted
        self.frames_rejected += other.frames_rejected
        self.frame_bytes += other.frame_bytes
        self.duplicate_replies += other.duplicate_replies
        self.retransmissions += other.retransmissions
        self.selective_retx += other.selective_retx
        self.fec_recovered += other.fec_recovered
        self.sessions_overflow += other.sessions_overflow
        self.nodes_joined += other.nodes_joined
        self.nodes_left += other.nodes_left
        self.nodes_crashed += other.nodes_crashed
        self.orphaned_replies += other.orphaned_replies
        self.degraded_episodes += other.degraded_episodes
        self.reply_latency_ms.extend(other.reply_latency_ms)

    def as_dict(self) -> dict[str, float]:
        """Flat summary for reporting."""
        return {
            "broadcasts": self.broadcasts,
            "unicasts": self.unicasts,
            "bytes_broadcast": self.bytes_broadcast,
            "bytes_unicast": self.bytes_unicast,
            "total_bytes": self.total_bytes,
            "nodes_reached": self.nodes_reached,
            "candidates": self.candidates,
            "replies": self.replies,
            "dropped_duplicate": self.dropped_duplicate,
            "dropped_ttl": self.dropped_ttl,
            "dropped_expired": self.dropped_expired,
            "dropped_rate_limited": self.dropped_rate_limited,
            "frames_sent": self.frames_sent,
            "frames_dropped": self.frames_dropped,
            "frames_duplicated": self.frames_duplicated,
            "frames_corrupted": self.frames_corrupted,
            "frames_rejected": self.frames_rejected,
            "frame_bytes": self.frame_bytes,
            "duplicate_replies": self.duplicate_replies,
            "retransmissions": self.retransmissions,
            "selective_retx": self.selective_retx,
            "fec_recovered": self.fec_recovered,
            "sessions_overflow": self.sessions_overflow,
            "nodes_joined": self.nodes_joined,
            "nodes_left": self.nodes_left,
            "nodes_crashed": self.nodes_crashed,
            "orphaned_replies": self.orphaned_replies,
            "degraded_episodes": self.degraded_episodes,
            "mean_reply_latency_ms": (
                sum(self.reply_latency_ms) / len(self.reply_latency_ms)
                if self.reply_latency_ms
                else 0.0
            ),
        }


@dataclass
class AggregateMetrics:
    """Cross-episode summary of one multi-episode engine run.

    Simulated throughput is episodes per simulated second (first broadcast
    to last event); wall-clock throughput is the benchmark's concern and is
    measured outside the engine.
    """

    episodes: int
    matches: int
    sim_duration_ms: int
    total: NetworkMetrics
    latency_p50_ms: float
    latency_p95_ms: float

    @property
    def episodes_per_sim_sec(self) -> float:
        if self.sim_duration_ms <= 0:
            return 0.0
        return self.episodes / (self.sim_duration_ms / 1000)

    def as_dict(self) -> dict[str, float]:
        """Flat summary for reporting, prefixed to avoid metric-name clashes."""
        summary = {
            "episodes": self.episodes,
            "matches": self.matches,
            "sim_duration_ms": self.sim_duration_ms,
            "episodes_per_sim_sec": round(self.episodes_per_sim_sec, 3),
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
        }
        summary.update(self.total.as_dict())
        return summary
