"""Transmission and outcome accounting for simulated friending runs."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NetworkMetrics"]


@dataclass
class NetworkMetrics:
    """Counters accumulated over one simulated request's lifetime.

    A *broadcast* is one node transmitting the request package to all of
    its neighbours at once (the wireless medium is shared); a *unicast* is
    one hop of a reply travelling back towards the initiator.
    """

    broadcasts: int = 0
    unicasts: int = 0
    bytes_broadcast: int = 0
    bytes_unicast: int = 0
    nodes_reached: int = 0
    candidates: int = 0
    replies: int = 0
    dropped_duplicate: int = 0
    dropped_ttl: int = 0
    dropped_expired: int = 0
    dropped_rate_limited: int = 0
    reply_latency_ms: list[int] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """All bytes put on the air."""
        return self.bytes_broadcast + self.bytes_unicast

    def as_dict(self) -> dict[str, float]:
        """Flat summary for reporting."""
        return {
            "broadcasts": self.broadcasts,
            "unicasts": self.unicasts,
            "bytes_broadcast": self.bytes_broadcast,
            "bytes_unicast": self.bytes_unicast,
            "total_bytes": self.total_bytes,
            "nodes_reached": self.nodes_reached,
            "candidates": self.candidates,
            "replies": self.replies,
            "dropped_duplicate": self.dropped_duplicate,
            "dropped_ttl": self.dropped_ttl,
            "dropped_expired": self.dropped_expired,
            "dropped_rate_limited": self.dropped_rate_limited,
            "mean_reply_latency_ms": (
                sum(self.reply_latency_ms) / len(self.reply_latency_ms)
                if self.reply_latency_ms
                else 0.0
            ),
        }
