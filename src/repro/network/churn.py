"""Deterministic open-world churn: arrival, departure and sleep-wake plans.

The open-world plane (``FriendingEngine.begin/step/inject``) lets nodes
join, leave, crash and come back at any simulated time; this module
decides *when* and *to whom* that happens, and drives the engine through
it.  Two rules carry over from the channel planes:

1. **Counter-mode schedules.**  Every churn decision comes from a
   SHA-256 keystream keyed by ``(seed, spec)`` alone -- tick ``k``'s
   words are ``SHA256(prefix || k)``, a probability-``p`` decision fires
   when a 32-bit word falls below :func:`~repro.network.channel_backend.
   fate_threshold`\\ ``(p)``, exactly the ChannelModel v2 fate
   discipline.  No shared RNG stream threads through the run, so a
   churn-enabled run reproduces from ``(seed, spec)`` byte for byte,
   and sequential == region-sharded holds (the schedule is computed
   outside the engines and applied at identical step boundaries).
2. **Deterministic application.**  Victims are drawn by indexing the
   *sorted* live population with a schedule word; joiners get ids
   ``j0, j1, ...`` (disjoint from the ``n{i}`` population), positions
   from schedule words, and neighbours from the positions of the live
   nodes within the radio radius.

The :class:`ChurnRunner` applies churn events, sleep-wake returns and
:mod:`~repro.network.faults` campaign actions between engine steps; see
``docs/robustness.md`` for the full determinism contract.
"""

from __future__ import annotations

import hashlib
import heapq
import struct
from dataclasses import dataclass, fields

from repro.network.channel_backend import fate_threshold

__all__ = [
    "ChurnEvent",
    "ChurnModel",
    "ChurnRunner",
    "ChurnSpec",
    "SCENARIO_CHURN_SLEEP_MS",
]

# Crashed nodes driven by a scenario-level churn rate wake after this
# much simulated time, their volatile state already lost (graceful leaves
# are permanent).  Fixed policy rather than a spec knob: the scenario
# fields stay the sweepable pair (rate, crash rate).
SCENARIO_CHURN_SLEEP_MS = 5_000

_TICK_PREFIX_TAG = b"repro.churn.v1:"
_U64 = struct.Struct(">Q")


@dataclass(frozen=True)
class ChurnSpec:
    """Rates and granularity of one churn plan (all per simulated second).

    ``tick_ms`` is the schedule granularity: each tick draws one
    keystream block and fires at most one join, one leave and one crash.
    Rates are therefore capped at one event per tick
    (``rate * tick_ms / 1000 <= 1``); raise the granularity for hotter
    churn.  ``sleep_ms > 0`` makes *crashes* temporary: a crashed node
    wakes that much simulated time later with its volatile state already
    lost.  Graceful leaves are permanent -- paired with arrivals they
    keep the population stationary in expectation, where waking every
    departure would grow it without bound.
    """

    join_rate_per_s: float = 0.0
    leave_rate_per_s: float = 0.0
    crash_rate_per_s: float = 0.0
    sleep_ms: int = 0
    tick_ms: int = 100

    def __post_init__(self):
        for name in ("join_rate_per_s", "leave_rate_per_s", "crash_rate_per_s"):
            rate = getattr(self, name)
            if not isinstance(rate, (int, float)) or rate < 0:
                raise ValueError(f"{name} must be a non-negative number, got {rate!r}")
        if not isinstance(self.tick_ms, int) or self.tick_ms < 1:
            raise ValueError(f"tick_ms must be a positive integer, got {self.tick_ms!r}")
        if not isinstance(self.sleep_ms, int) or self.sleep_ms < 0:
            raise ValueError(f"sleep_ms must be a non-negative integer, got {self.sleep_ms!r}")
        per_tick = self.tick_ms / 1000.0
        for name in ("join_rate_per_s", "leave_rate_per_s", "crash_rate_per_s"):
            if getattr(self, name) * per_tick > 1.0:
                raise ValueError(
                    f"{name} exceeds one event per tick at tick_ms={self.tick_ms}; "
                    "shrink tick_ms"
                )

    @property
    def active(self) -> bool:
        return bool(self.join_rate_per_s or self.leave_rate_per_s or self.crash_rate_per_s)


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """One scheduled churn decision.

    ``kind`` is ``"join"`` / ``"leave"`` / ``"crash"``; ``draw`` selects
    the victim (modulo the live population at apply time) and ``x`` /
    ``y`` place a joiner.  Sleep-wake returns are derived by the runner
    (the victim is only known at apply time), not scheduled here.
    """

    time_ms: int
    kind: str
    draw: int
    x: float = 0.0
    y: float = 0.0


class ChurnModel:
    """Counter-mode churn schedule: a pure function of ``(seed, spec)``.

    Tick ``k`` (fire time ``k * tick_ms``) hashes
    ``SHA256(tag || seed || spec-digest || k)`` into eight 32-bit words:
    words 0-2 gate join/leave/crash against their per-tick thresholds,
    words 3-4 place a joiner in the unit square, words 5-6 are the
    leave/crash victim draws.  The schedule for any window is therefore
    reproducible, prefix-stable (extending the horizon never changes
    earlier events) and identical however the run is sharded.
    """

    def __init__(self, spec: ChurnSpec, seed: int):
        self.spec = spec
        self.seed = seed
        blob = repr(tuple(
            (f.name, getattr(spec, f.name)) for f in fields(spec)
        )).encode("ascii")
        self._prefix = (
            _TICK_PREFIX_TAG
            + struct.pack(">q", seed)
            + hashlib.sha256(blob).digest()[:16]
        )
        per_tick = spec.tick_ms / 1000.0
        self._join_t = fate_threshold(spec.join_rate_per_s * per_tick)
        self._leave_t = fate_threshold(spec.leave_rate_per_s * per_tick)
        self._crash_t = fate_threshold(spec.crash_rate_per_s * per_tick)

    def events(self, start_ms: int, until_ms: int) -> list[ChurnEvent]:
        """Churn events with ``start_ms <= time < until_ms``, time-ordered."""
        spec = self.spec
        if until_ms <= start_ms or not spec.active:
            return []
        tick = spec.tick_ms
        prefix = self._prefix
        join_t, leave_t, crash_t = self._join_t, self._leave_t, self._crash_t
        out: list[ChurnEvent] = []
        first = -(-start_ms // tick)  # ceil division
        for k in range(first, -(-until_ms // tick)):
            time_ms = k * tick
            if time_ms >= until_ms:
                break
            words = struct.unpack(
                ">8I", hashlib.sha256(prefix + _U64.pack(k)).digest()
            )
            if join_t and words[0] < join_t:
                out.append(ChurnEvent(
                    time_ms, "join", words[3],
                    x=words[3] / 2**32, y=words[4] / 2**32,
                ))
            if leave_t and words[1] < leave_t:
                out.append(ChurnEvent(time_ms, "leave", words[5]))
            if crash_t and words[2] < crash_t:
                out.append(ChurnEvent(time_ms, "crash", words[6]))
        return out


class ChurnRunner:
    """Drive an open-world engine through churn, wakes and fault actions.

    The runner owns the *application* side of determinism: it steps the
    engine to each action boundary (so every engine -- sequential or
    sharded -- executes exactly the same events before the same action),
    resolves victims against its sorted live set, computes join
    neighbourhoods from positions, and books sleep-wake returns.

    Parameters
    ----------
    engine:
        An engine already in open-world mode (``begin()`` called).
    model:
        The :class:`ChurnModel` naming the schedule.
    positions:
        node id -> (x, y) of the initial population; the runner keeps it
        current for joiners and uses it for neighbourhood computation.
        Departed nodes keep their position (they wake where they slept).
    radio_radius:
        Unit-disk radius for join/wake neighbourhoods.
    participant_factory:
        ``(node_id, joiner_index) -> Participant | None`` for brand-new
        joiners; wakers keep their original participant.
    faults:
        Compiled fault actions ``(time_ms, FaultAction)`` (see
        :func:`repro.network.faults.compile_campaign`).
    """

    def __init__(
        self,
        engine,
        model: ChurnModel,
        *,
        positions: dict[str, tuple[float, float]],
        radio_radius: float,
        participant_factory=None,
        faults: list[tuple[int, object]] | tuple = (),
    ):
        self.engine = engine
        self.model = model
        self.positions = dict(positions)
        self.radio_radius = radio_radius
        self.participant_factory = participant_factory
        self.faults = list(faults)
        self.live: set[str] = set(self.positions)
        self.joined = 0
        self.events_applied = 0
        self._agenda: list[tuple[int, int, str, object]] = []
        self._agenda_seq = 0
        # Drive window, exposed so fault actions can pin horizon fractions
        # (e.g. blackout wake times) to absolute simulated milliseconds.
        self._fault_start = 0
        self._fault_horizon = 0

    # -- agenda plumbing -----------------------------------------------------

    def _book(self, time_ms: int, kind: str, payload) -> None:
        heapq.heappush(self._agenda, (time_ms, self._agenda_seq, kind, payload))
        self._agenda_seq += 1

    def _neighbours_of(self, node_id: str) -> list[str]:
        """Live nodes within the radio radius of *node_id*'s position."""
        x, y = self.positions[node_id]
        radius_sq = self.radio_radius * self.radio_radius
        live = self.live
        out = []
        for other, (ox, oy) in self.positions.items():
            if other == node_id or other not in live:
                continue
            dx = ox - x
            dy = oy - y
            if dx * dx + dy * dy <= radius_sq:
                out.append(other)
        return out

    # -- applying one action -------------------------------------------------

    def _apply_churn(self, event: ChurnEvent) -> None:
        engine = self.engine
        if event.kind == "join":
            node_id = f"j{self.joined}"
            self.joined += 1
            self.positions[node_id] = (event.x, event.y)
            self.live.add(node_id)
            participant = (
                self.participant_factory(node_id, self.joined - 1)
                if self.participant_factory is not None
                else None
            )
            engine.join_node(
                node_id, participant, self._neighbours_of(node_id),
                position=(event.x, event.y),
            )
        else:
            candidates = sorted(self.live)
            if not candidates:
                return
            victim = candidates[event.draw % len(candidates)]
            self.live.discard(victim)
            if event.kind == "crash":
                engine.crash_node(victim)
                if self.model.spec.sleep_ms > 0:
                    self._book(event.time_ms + self.model.spec.sleep_ms, "wake", victim)
            else:
                engine.leave_node(victim)
                # Graceful leaves are permanent -- the runner books no
                # wake -- so the departed node's state is unreachable.
                # Free it, or an hours-long soak leaks one Node (and its
                # session table) per leave.
                engine.forget_node(victim)
                self.positions.pop(victim, None)
        self.events_applied += 1

    def _apply_wake(self, node_id: str) -> None:
        if node_id in self.live:  # pragma: no cover -- victims leave the live set
            return
        self.live.add(node_id)
        self.engine.join_node(
            node_id, None, self._neighbours_of(node_id),
            position=self.positions[node_id],
        )
        self.events_applied += 1

    def _apply_fault(self, action) -> None:
        from repro.network.faults import apply_fault_action

        apply_fault_action(self, action)
        self.events_applied += 1

    # -- the drive loop ------------------------------------------------------

    def drive(self, start_ms: int, horizon_ms: int, *,
              step_ms: int | None = None, on_step=None) -> None:
        """Step the engine to *horizon_ms*, applying every action on the way.

        Actions (churn events, fault actions, booked wakes) execute at
        their exact boundary: the engine first steps to the action time,
        then the action applies.  *step_ms* adds regular boundaries with
        no action of their own; *on_step(runner, now_ms)* runs at each of
        them -- the soak harness's injection/assertion hook.  The caller
        finishes the run (``engine.finish()``) when done.
        """
        self._fault_start = start_ms
        self._fault_horizon = horizon_ms
        for event in self.model.events(start_ms, horizon_ms):
            self._book(event.time_ms, "churn", event)
        for time_ms, action in self.faults:
            self._book(time_ms, "fault", action)
        if step_ms is not None:
            for tick_ms in range(start_ms + step_ms, horizon_ms, step_ms):
                self._book(tick_ms, "tick", None)

        agenda = self._agenda
        engine = self.engine
        while agenda and agenda[0][0] <= horizon_ms:
            now_ms = agenda[0][0]
            engine.step(now_ms)
            while agenda and agenda[0][0] == now_ms:
                _, _, kind, payload = heapq.heappop(agenda)
                if kind == "churn":
                    self._apply_churn(payload)
                elif kind == "wake":
                    self._apply_wake(payload)
                elif kind == "fault":
                    self._apply_fault(payload)
                else:  # "tick"
                    if on_step is not None:
                        on_step(self, now_ms)
        engine.step(horizon_ms)
