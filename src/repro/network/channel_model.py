"""Per-hop lossy-channel model for the datagram engine.

A :class:`ChannelModel` decides what the radio medium does to each frame
transmitted over one link: deliver it, drop it, deliver a duplicate copy,
corrupt bits in flight, and/or delay it (latency jitter, which is also how
reordering arises -- a jittered frame can overtake or fall behind its
neighbours in the event queue).

Determinism is the load-bearing property.  Every transmission's fate is a
pure function of ``(channel seed, flow id, link, seq)`` -- derived by
hashing those values into a private :class:`random.Random` -- never of a
shared RNG stream.  Two consequences:

- a lossy run is reproducible from ``(seed, spec)`` alone, and
- the fate of a transmission does not depend on how concurrent episodes
  interleave in the event queue, so a sharded engine run
  (:meth:`~repro.network.engine.FriendingEngine.run_parallel`) perturbs
  exactly the same frames as a sequential one.

:class:`PerfectChannel` (all rates zero) short-circuits before any
hashing: one copy, base latency, bytes untouched -- byte-identical to the
object-passing engine it replaced.
"""

from __future__ import annotations

import hashlib
import random
import struct
from dataclasses import dataclass

from repro.core.wire import flip_bit

__all__ = ["ChannelModel", "PerfectChannel", "Delivery"]


@dataclass(frozen=True)
class Delivery:
    """One physical copy the channel puts on the air for a transmission."""

    delay_ms: int
    data: bytes
    corrupted: bool = False


@dataclass(frozen=True)
class ChannelModel:
    """Seedable lossy radio medium applied independently per transmission.

    Parameters (all probabilities in ``[0, 1]``):

    drop_rate:
        The frame is transmitted but never received.
    dup_rate:
        The link-layer delivers a second copy (e.g. an ACK was lost and
        the sender repeated itself).
    reorder_rate:
        The copy is held back by an extra :attr:`reorder_delay_ms`,
        letting later frames overtake it.
    corrupt_rate:
        One random bit of the copy is flipped in flight; the frame
        envelope's CRC turns this into a clean endpoint-side rejection.
    jitter_ms:
        Uniform extra per-copy latency in ``[0, jitter_ms]`` simulated ms.
    seed:
        Folded into every per-transmission hash; two channels with
        different seeds perturb different frames.
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    jitter_ms: int = 0
    reorder_delay_ms: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "dup_rate", "reorder_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or not 0 <= value <= 1:
                raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
        if not isinstance(self.jitter_ms, int) or self.jitter_ms < 0:
            raise ValueError(f"jitter_ms must be a non-negative integer, got {self.jitter_ms!r}")
        if not isinstance(self.reorder_delay_ms, int) or self.reorder_delay_ms < 0:
            raise ValueError(
                f"reorder_delay_ms must be a non-negative integer, got {self.reorder_delay_ms!r}"
            )

    @property
    def is_perfect(self) -> bool:
        """True when the channel can never perturb a frame."""
        return (
            self.drop_rate == 0
            and self.dup_rate == 0
            and self.reorder_rate == 0
            and self.corrupt_rate == 0
            and self.jitter_ms == 0
        )

    def _rng(self, flow: bytes, link: tuple[str, str], seq: int) -> random.Random:
        digest = hashlib.sha256(
            struct.pack(">qI", self.seed, seq & 0xFFFF_FFFF)
            + flow
            + b"\x00"
            + link[0].encode("utf-8")
            + b"\x00"
            + link[1].encode("utf-8")
        ).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def transmit(
        self,
        frame: bytes,
        *,
        flow: bytes,
        link: tuple[str, str],
        seq: int,
        latency_ms: int,
    ) -> list[Delivery]:
        """Decide this transmission's fate; returns the delivered copies.

        *flow* names the logical stream (request id plus direction),
        *link* is ``(src, dst)`` and *seq* distinguishes repeat
        transmissions of the same flow over the same link (retransmission
        waves, reply hop indices).  An empty list means the frame was
        lost in the air.
        """
        if self.is_perfect:
            return [Delivery(latency_ms, frame)]
        rng = self._rng(flow, link, seq)
        if rng.random() < self.drop_rate:
            return []
        copies = 2 if rng.random() < self.dup_rate else 1
        out = []
        for _ in range(copies):
            delay = latency_ms
            if self.jitter_ms:
                delay += rng.randint(0, self.jitter_ms)
            if self.reorder_rate and rng.random() < self.reorder_rate:
                delay += self.reorder_delay_ms
            data = frame
            corrupted = False
            if self.corrupt_rate and rng.random() < self.corrupt_rate:
                data = flip_bit(frame, rng.randrange(max(1, len(frame) * 8)))
                corrupted = True
            out.append(Delivery(delay, data, corrupted))
        return out


@dataclass(frozen=True)
class PerfectChannel(ChannelModel):
    """Lossless, jitter-free medium: one copy per transmission, untouched.

    The engine's default.  Runs over a perfect channel are byte-identical
    (matches, wire elements, metrics) to the pre-datagram object-passing
    engine, which is pinned by ``tests/network/test_engine_golden.py``.
    """
