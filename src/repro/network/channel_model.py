"""Per-hop lossy-channel model for the datagram engine.

A :class:`ChannelModel` decides what the radio medium does to each frame
transmitted over one link: deliver it, drop it, deliver a duplicate copy,
corrupt bits in flight, and/or delay it (latency jitter, which is also how
reordering arises -- a jittered frame can overtake or fall behind its
neighbours in the event queue).

Determinism is the load-bearing property.  Every transmission's fate is a
pure function of ``(channel seed, flow id, link, seq)`` -- never of a
shared RNG stream.  Two consequences:

- a lossy run is reproducible from ``(seed, spec)`` alone, and
- the fate of a transmission does not depend on how concurrent episodes
  interleave in the event queue, so a sharded engine run
  (:meth:`~repro.network.engine.FriendingEngine.run_parallel`) perturbs
  exactly the same frames as a sequential one.

*How* the fate derives from that key is itself versioned, because the
exact drawn values are part of the reproducibility contract
(``docs/wire_format.md`` has the policy):

``version=1`` (default)
    The original plane: the key is hashed and the digest reseeds a
    private scratch :class:`random.Random` whose draws decide the fate.
    Kept bit-for-bit stable -- every recorded v1 spec reproduces
    draw-for-draw, pinned by the flood-plane bench's frame goldens.

``version=2``
    The counter-mode plane: fates come straight from a SHA-256
    keystream over ``(seed, flow, link, seq, draw index)`` -- uniform
    ints via rejection sampling on 32-bit stream words, no scratch-MT
    reseed, no :class:`random.Random` anywhere on the hot path.  This
    removes the fixed ~6us per-transmission reseed that dominated v1
    lossy floods, and the stream computation is pluggable
    (:mod:`repro.network.channel_backend`: a hashlib reference loop and
    an optional vectorised numpy implementation, bit-identical).

:class:`PerfectChannel` (all rates zero) short-circuits before any
hashing: one copy, base latency, bytes untouched -- byte-identical to the
object-passing engine it replaced.
"""

from __future__ import annotations

import hashlib
import random
import struct
from dataclasses import dataclass
from typing import NamedTuple

from repro.core.wire import flip_bit
from repro.network.channel_backend import (
    FateParams,
    current_channel_backend,
    fate_threshold,
)

__all__ = ["ChannelModel", "PerfectChannel", "Delivery"]

CHANNEL_VERSIONS = (1, 2)

# v2 hashes node ids and flow ids to fixed-width 32-byte digests so the
# keystream messages have a static layout (vectorisable, no separator
# bytes).  Both caches are value-pure -- a digest only depends on its key
# -- so sharded workers recomputing them stay byte-identical; the bound
# just stops a pathological id churn from growing them without limit.
_DIGEST_CACHE_MAX = 1 << 17
_NODE_DIGESTS: dict[str, bytes] = {}
_FLOW_DIGESTS: dict[bytes, bytes] = {}
_PACK_SEED_SEQ = struct.Struct(">qI").pack


def _node32(node_id: str) -> bytes:
    digest = _NODE_DIGESTS.get(node_id)
    if digest is None:
        if len(_NODE_DIGESTS) >= _DIGEST_CACHE_MAX:
            _NODE_DIGESTS.clear()
        digest = _NODE_DIGESTS[node_id] = hashlib.sha256(
            node_id.encode("utf-8")
        ).digest()
    return digest


def _flow32(flow: bytes) -> bytes:
    digest = _FLOW_DIGESTS.get(flow)
    if digest is None:
        if len(_FLOW_DIGESTS) >= _DIGEST_CACHE_MAX:
            _FLOW_DIGESTS.clear()
        digest = _FLOW_DIGESTS[flow] = hashlib.sha256(flow).digest()
    return digest


# One Mersenne-Twister instance serves every fate draw: ``Random(x)`` and
# ``rng.seed(x)`` initialise the identical generator state, but reseeding
# skips the object construction that used to dominate the per-transmission
# cost.  Single-threaded by design (the engine is), and never shared with
# callers beyond the duration of one fate draw.
_SCRATCH_RNG = random.Random()
# The C base-class seed, bound to the scratch instance: for an int seed the
# Python-level ``random.Random.seed`` wrapper only type-dispatches (and
# resets unused gauss state) before delegating here, and that wrapper is
# measurable at one call per transmission of a city flood.  State produced
# is bit-identical for ints; the transmit-equivalence test pins it.
_SCRATCH_RESEED = random.Random.__base__.seed.__get__(_SCRATCH_RNG)


class Delivery(NamedTuple):
    """One physical copy the channel puts on the air for a transmission.

    A named tuple rather than a dataclass: one is allocated per delivered
    copy of every transmission of a flood, and tuple construction is the
    cheapest immutable record CPython offers.
    """

    delay_ms: int
    data: bytes
    corrupted: bool = False


@dataclass(frozen=True)
class ChannelModel:
    """Seedable lossy radio medium applied independently per transmission.

    Parameters (all probabilities in ``[0, 1]``):

    drop_rate:
        The frame is transmitted but never received.
    dup_rate:
        The link-layer delivers a second copy (e.g. an ACK was lost and
        the sender repeated itself).
    reorder_rate:
        The copy is held back by an extra :attr:`reorder_delay_ms`,
        letting later frames overtake it.
    corrupt_rate:
        One random bit of the copy is flipped in flight; the frame
        envelope's CRC turns this into a clean endpoint-side rejection.
    jitter_ms:
        Uniform extra per-copy latency in ``[0, jitter_ms]`` simulated ms.
    seed:
        Folded into every per-transmission hash; two channels with
        different seeds perturb different frames.
    version:
        Fate-derivation plane, ``1`` (scratch-MT, default) or ``2``
        (counter-mode keystream).  Part of the determinism contract:
        the two planes draw *different* (equally valid) fates for the
        same key, so a recorded run only reproduces under the version
        that produced it.
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    jitter_ms: int = 0
    reorder_delay_ms: int = 8
    seed: int = 0
    version: int = 1

    def __post_init__(self) -> None:
        for name in ("drop_rate", "dup_rate", "reorder_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or not 0 <= value <= 1:
                raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
        if not isinstance(self.jitter_ms, int) or self.jitter_ms < 0:
            raise ValueError(f"jitter_ms must be a non-negative integer, got {self.jitter_ms!r}")
        if not isinstance(self.reorder_delay_ms, int) or self.reorder_delay_ms < 0:
            raise ValueError(
                f"reorder_delay_ms must be a non-negative integer, got {self.reorder_delay_ms!r}"
            )
        if self.version not in CHANNEL_VERSIONS:
            raise ValueError(
                f"version must be one of {CHANNEL_VERSIONS} "
                f"(1 = scratch-MT, 2 = counter-mode), got {self.version!r}"
            )
        if self.version == 2:
            # Derived draw parameters, precomputed once per channel.  The
            # dataclass is frozen, so the cache goes through
            # object.__setattr__; it lives in __dict__ (pickles with the
            # instance for run_parallel workers) and, not being a field,
            # never affects __eq__ or repr.
            object.__setattr__(
                self,
                "_fate_params",
                FateParams(
                    drop_t=fate_threshold(self.drop_rate),
                    dup_t=fate_threshold(self.dup_rate),
                    reorder_t=fate_threshold(self.reorder_rate),
                    corrupt_t=fate_threshold(self.corrupt_rate),
                    jitter_n=self.jitter_ms + 1,
                    jitter_mask=(1 << self.jitter_ms.bit_length()) - 1,
                    reorder_delay_ms=self.reorder_delay_ms,
                ),
            )

    @property
    def is_perfect(self) -> bool:
        """True when the channel can never perturb a frame."""
        return (
            self.drop_rate == 0
            and self.dup_rate == 0
            and self.reorder_rate == 0
            and self.corrupt_rate == 0
            and self.jitter_ms == 0
        )

    def _rng(self, flow: bytes, link: tuple[str, str], seq: int) -> random.Random:
        digest = hashlib.sha256(
            struct.pack(">qI", self.seed, seq & 0xFFFF_FFFF)
            + flow
            + b"\x00"
            + link[0].encode("utf-8")
            + b"\x00"
            + link[1].encode("utf-8")
        ).digest()
        rng = _SCRATCH_RNG
        _SCRATCH_RESEED(int.from_bytes(digest[:8], "big"))
        return rng

    def _fate(self, frame, rng: random.Random, latency_ms: int) -> list[Delivery]:
        """Draw one transmission's fate from an already-seeded *rng*."""
        if rng.random() < self.drop_rate:
            return []
        copies = 2 if rng.random() < self.dup_rate else 1
        return self._copies(frame, rng, latency_ms, copies)

    def _copies(
        self, frame, rng: random.Random, latency_ms: int, copies: int
    ) -> list[Delivery]:
        """Draw the per-copy perturbations (jitter, reorder, corruption)."""
        out = []
        for _ in range(copies):
            delay = latency_ms
            if self.jitter_ms:
                delay += rng.randint(0, self.jitter_ms)
            if self.reorder_rate and rng.random() < self.reorder_rate:
                delay += self.reorder_delay_ms
            data = frame
            corrupted = False
            if self.corrupt_rate and rng.random() < self.corrupt_rate:
                data = flip_bit(frame, rng.randrange(max(1, len(frame) * 8)))
                corrupted = True
            out.append(Delivery(delay, data, corrupted))
        return out

    def transmit(
        self,
        frame: bytes,
        *,
        flow: bytes,
        link: tuple[str, str],
        seq: int,
        latency_ms: int,
    ) -> list[Delivery]:
        """Decide this transmission's fate; returns the delivered copies.

        *flow* names the logical stream (request id plus direction),
        *link* is ``(src, dst)`` and *seq* distinguishes repeat
        transmissions of the same flow over the same link (retransmission
        waves, reply hop indices).  An empty list means the frame was
        lost in the air.
        """
        if self.is_perfect:
            return [Delivery(latency_ms, frame)]
        if self.version == 2:
            return self._deliveries_v2(frame, flow, link[0], [link[1]], seq, latency_ms)[0]
        return self._fate(frame, self._rng(flow, link, seq), latency_ms)

    def transmit_many(
        self,
        frame: bytes,
        *,
        flow: bytes,
        src: str,
        dsts: list[str],
        seq: int,
        latency_ms: int,
    ) -> list[list[Delivery]]:
        """Draw the fates of one broadcast over every ``(src, dst)`` link.

        Returns one :meth:`transmit` result per destination, in order,
        with bit-identical per-link values: each link's fate still hashes
        from ``(seed, flow, (src, dst), seq)``.  The batching win is the
        shared hash prefix -- ``seed | seq | flow | src`` is absorbed into
        one SHA-256 state that is then copied per destination -- plus a
        single short-circuit for the perfect channel, where every link
        shares one immutable :class:`Delivery`.
        """
        if self.is_perfect:
            delivery = [Delivery(latency_ms, frame)]
            return [delivery for _ in dsts]
        if self.version == 2:
            return self._deliveries_v2(frame, flow, src, dsts, seq, latency_ms)
        prefix = hashlib.sha256(
            struct.pack(">qI", self.seed, seq & 0xFFFF_FFFF)
            + flow
            + b"\x00"
            + src.encode("utf-8")
            + b"\x00"
        )
        # The loop below is `_fate` unrolled for the single-copy case with
        # everything hoisted: this path runs once per neighbour of every
        # broadcast of a city flood, and the draw order must replicate
        # `_fate` exactly (drop, dup, then per-copy jitter/reorder/corrupt)
        # so batched fates stay bit-identical to one-at-a-time ones.
        rng = _SCRATCH_RNG
        reseed = _SCRATCH_RESEED
        rand = rng.random
        getrandbits = rng.getrandbits
        from_bytes = int.from_bytes
        prefix_copy = prefix.copy
        drop_rate = self.drop_rate
        dup_rate = self.dup_rate
        reorder_rate = self.reorder_rate
        corrupt_rate = self.corrupt_rate
        # randint(0, jitter_ms) inlined as CPython's _randbelow rejection
        # loop (k-bit draws until < n): same underlying getrandbits stream,
        # same values, three call layers fewer.  The transmit-equivalence
        # test pins this against Random.randint, so a CPython algorithm
        # change would fail loudly rather than silently fork the fates.
        jitter_n = self.jitter_ms + 1
        jitter_bits = jitter_n.bit_length()
        has_jitter = self.jitter_ms > 0
        out = []
        append = out.append
        for dst in dsts:
            h = prefix_copy()
            h.update(dst.encode("utf-8"))
            reseed(from_bytes(h.digest()[:8], "big"))
            if rand() < drop_rate:
                append([])
                continue
            if rand() < dup_rate:
                append(self._copies(frame, rng, latency_ms, 2))
                continue
            delay = latency_ms
            if has_jitter:
                r = getrandbits(jitter_bits)
                while r >= jitter_n:
                    r = getrandbits(jitter_bits)
                delay += r
            if reorder_rate and rand() < reorder_rate:
                delay += self.reorder_delay_ms
            if corrupt_rate and rand() < corrupt_rate:
                data = flip_bit(frame, rng.randrange(max(1, len(frame) * 8)))
                append([Delivery(delay, data, True)])
            else:
                append([Delivery(delay, frame)])
        return out

    def _deliveries_v2(
        self,
        frame: bytes,
        flow: bytes,
        src: str,
        dsts: list[str],
        seq: int,
        latency_ms: int,
    ) -> list[list[Delivery]]:
        """Counter-mode fate plane: one keystream per link, no RNG objects.

        The 76-byte broadcast prefix ``seed | seq | flow32 | src32`` keys
        the whole neighbourhood; the selected channel backend
        (:func:`~repro.network.channel_backend.current_channel_backend`)
        turns it into per-link ``(extra_delay, corrupt_bit)`` fates,
        which map 1:1 onto :class:`Delivery` copies here.  Backend
        choice is bit-transparent, so it is process-global state rather
        than part of the channel's identity.
        """
        prefix = (
            _PACK_SEED_SEQ(self.seed, seq & 0xFFFF_FFFF) + _flow32(flow) + _node32(src)
        )
        fates = current_channel_backend().broadcast_fates(
            prefix,
            [_node32(dst) for dst in dsts],
            self._fate_params,
            max(1, len(frame) * 8),
        )
        out = []
        append = out.append
        for fate in fates:
            if not fate:
                append([])
            elif len(fate) == 1:
                extra, bit = fate[0]
                if bit < 0:
                    append([Delivery(latency_ms + extra, frame)])
                else:
                    append([Delivery(latency_ms + extra, flip_bit(frame, bit), True)])
            else:
                append(
                    [
                        Delivery(latency_ms + extra, frame)
                        if bit < 0
                        else Delivery(latency_ms + extra, flip_bit(frame, bit), True)
                        for extra, bit in fate
                    ]
                )
        return out


@dataclass(frozen=True)
class PerfectChannel(ChannelModel):
    """Lossless, jitter-free medium: one copy per transmission, untouched.

    The engine's default.  Runs over a perfect channel are byte-identical
    (matches, wire elements, metrics) to the pre-datagram object-passing
    engine, which is pinned by ``tests/network/test_engine_golden.py``.
    """
