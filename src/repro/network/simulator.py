"""Discrete-event ad-hoc network simulator for friending episodes.

One episode: an initiator node broadcasts its request package; every node
that receives it for the first time processes it (candidate pipeline) and
re-broadcasts while the TTL and validity window allow; candidate replies
travel back to the initiator hop-by-hop along the reverse flooding path.
The simulator accounts every transmission at the byte level, which is what
the paper's communication evaluation (Table VII, Sec. IV-B2) reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.protocols import Initiator, MatchRecord, Participant, Reply
from repro.core.request import RequestPackage
from repro.network.events import EventQueue
from repro.network.metrics import NetworkMetrics

__all__ = ["AdHocNetwork", "FriendingResult", "RateLimiter", "REPLY_OVERHEAD_BYTES"]

REPLY_OVERHEAD_BYTES = 12  # request id (8) + element count (2) + framing (2)
_REPLY_ELEMENT_BYTES = 48


class RateLimiter:
    """Sliding-window per-peer rate limiter (the paper's DoS defence).

    Each node refuses to relay or answer more than *max_events* packets
    from the same immediate neighbour within *window_ms*.
    """

    def __init__(self, max_events: int = 5, window_ms: int = 10_000):
        self.max_events = max_events
        self.window_ms = window_ms
        self._history: dict[str, list[int]] = {}

    def allow(self, peer: str, now_ms: int) -> bool:
        """Record an event from *peer*; False when the peer is over budget."""
        events = self._history.setdefault(peer, [])
        cutoff = now_ms - self.window_ms
        while events and events[0] < cutoff:
            events.pop(0)
        if len(events) >= self.max_events:
            return False
        events.append(now_ms)
        return True


@dataclass
class FriendingResult:
    """Outcome of one simulated friending episode."""

    matches: list[MatchRecord]
    metrics: NetworkMetrics
    replies: list[Reply]
    completed_at_ms: int

    @property
    def matched_ids(self) -> list[str]:
        return [m.responder_id for m in self.matches]


@dataclass
class _NodeState:
    participant: Participant | None
    neighbours: list[str]
    seen: set[bytes] = field(default_factory=set)
    limiter: RateLimiter = field(default_factory=RateLimiter)
    parent: dict[bytes, str] = field(default_factory=dict)
    hops: dict[bytes, int] = field(default_factory=dict)


class AdHocNetwork:
    """A static-snapshot MANET running the sealed-bottle protocols.

    Parameters
    ----------
    adjacency:
        Node id → neighbour ids (from :mod:`repro.network.topology`).
    participants:
        Node id → :class:`~repro.core.protocols.Participant` (the initiator
        node may map to None).
    hop_latency_ms / processing_latency_ms:
        Per-hop radio latency and per-node processing delay.
    """

    def __init__(
        self,
        adjacency: dict[str, list[str]],
        participants: dict[str, Participant | None],
        *,
        hop_latency_ms: int = 2,
        processing_latency_ms: int = 1,
        rate_limit: RateLimiter | None = None,
        rng: random.Random | None = None,
    ):
        unknown = set(participants) - set(adjacency)
        if unknown:
            raise ValueError(f"participants reference unknown nodes: {sorted(unknown)}")
        self.adjacency = adjacency
        self.hop_latency_ms = hop_latency_ms
        self.processing_latency_ms = processing_latency_ms
        self.rng = rng or random.Random()
        self._states = {
            node: _NodeState(
                participant=participants.get(node),
                neighbours=list(neigh),
                limiter=RateLimiter(
                    max_events=rate_limit.max_events if rate_limit else 50,
                    window_ms=rate_limit.window_ms if rate_limit else 10_000,
                ),
            )
            for node, neigh in adjacency.items()
        }

    def run_friending(
        self,
        initiator_node: str,
        initiator: Initiator,
        *,
        start_ms: int = 0,
        deadline_ms: int | None = None,
    ) -> FriendingResult:
        """Run one full episode and return matches plus metrics."""
        if initiator_node not in self._states:
            raise ValueError(f"unknown initiator node {initiator_node!r}")
        queue = EventQueue(start_ms)
        metrics = NetworkMetrics()
        replies: list[Reply] = []
        package = initiator.create_request(now_ms=start_ms)
        package_bytes = package.wire_size_bytes()
        rid = package.request_id

        origin = self._states[initiator_node]
        origin.seen.add(rid)
        origin.hops[rid] = 0

        def deliver_reply(reply: Reply, via: str, remaining_hops: int) -> None:
            if remaining_hops <= 0:
                record = initiator.handle_reply(reply, queue.now_ms)
                metrics.reply_latency_ms.append(queue.now_ms - start_ms)
                replies.append(reply)
                if record is not None:
                    pass  # recorded inside the initiator
                return
            metrics.unicasts += 1
            metrics.bytes_unicast += (
                REPLY_OVERHEAD_BYTES + len(reply.elements) * _REPLY_ELEMENT_BYTES
            )
            queue.schedule(
                self.hop_latency_ms,
                lambda: deliver_reply(reply, via, remaining_hops - 1),
            )

        def broadcast_from(node: str, ttl: int) -> None:
            state = self._states[node]
            metrics.broadcasts += 1
            metrics.bytes_broadcast += package_bytes
            for neighbour in state.neighbours:
                queue.schedule(
                    self.hop_latency_ms,
                    lambda nb=neighbour, src=node, t=ttl: receive(nb, src, t),
                )

        def receive(node: str, from_node: str, ttl: int) -> None:
            state = self._states[node]
            if rid in state.seen:
                metrics.dropped_duplicate += 1
                return
            if package.is_expired(queue.now_ms):
                metrics.dropped_expired += 1
                return
            if not state.limiter.allow(from_node, queue.now_ms):
                metrics.dropped_rate_limited += 1
                return
            state.seen.add(rid)
            state.parent[rid] = from_node
            hops = self._states[from_node].hops.get(rid, 0) + 1
            state.hops[rid] = hops
            metrics.nodes_reached += 1

            participant = state.participant
            if participant is not None:
                reply = participant.handle_request(package, now_ms=queue.now_ms)
                outcome = participant.last_outcome
                if outcome is not None and outcome.candidate:
                    metrics.candidates += 1
                if reply is not None:
                    metrics.replies += 1
                    queue.schedule(
                        self.processing_latency_ms,
                        lambda r=reply, h=hops: deliver_reply(r, node, h),
                    )
            if ttl > 1:
                queue.schedule(self.processing_latency_ms, lambda: broadcast_from(node, ttl - 1))
            else:
                metrics.dropped_ttl += 1

        broadcast_from(initiator_node, package.ttl)
        queue.run(until_ms=deadline_ms)
        return FriendingResult(
            matches=list(initiator.matches),
            metrics=metrics,
            replies=replies,
            completed_at_ms=queue.now_ms,
        )
