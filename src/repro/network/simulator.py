"""Discrete-event ad-hoc network simulator for friending episodes.

One episode: an initiator node broadcasts its request package; every node
that receives it for the first time processes it (candidate pipeline) and
re-broadcasts while the TTL and validity window allow; candidate replies
travel back to the initiator hop-by-hop along the reverse flooding path.
The simulator accounts every transmission at the byte level, which is what
the paper's communication evaluation (Table VII, Sec. IV-B2) reports.

The event logic itself lives in :mod:`repro.network.engine`, which can run
many overlapping episodes through one queue; :meth:`AdHocNetwork.run_friending`
is the single-episode convenience wrapper.
"""

from __future__ import annotations

import random
import sys
from collections import deque
from dataclasses import dataclass

from repro.core.protocols import Initiator, MatchRecord, Participant, Reply
from repro.network.channel_model import ChannelModel, PerfectChannel
from repro.network.metrics import NetworkMetrics
from repro.network.sessions import DEFAULT_SESSION_LIMIT, SessionTable

__all__ = [
    "AdHocNetwork",
    "FriendingResult",
    "Node",
    "RateLimiter",
    "REPLY_OVERHEAD_BYTES",
    "REPLY_ELEMENT_BYTES",
]

REPLY_OVERHEAD_BYTES = 12  # request id (8) + element count (2) + framing (2)
REPLY_ELEMENT_BYTES = 48


class RateLimiter:
    """Sliding-window per-peer rate limiter (the paper's DoS defence).

    Each node refuses to relay or answer more than *max_events* packets
    from the same immediate neighbour within *window_ms*.
    """

    def __init__(self, max_events: int = 5, window_ms: int = 10_000):
        self.max_events = max_events
        self.window_ms = window_ms
        self._history: dict[str, deque[int]] = {}

    def allow(self, peer: str, now_ms: int) -> bool:
        """Record an event from *peer*; False when the peer is over budget."""
        events = self._history.setdefault(peer, deque())
        cutoff = now_ms - self.window_ms
        while events and events[0] < cutoff:
            events.popleft()
        if len(events) >= self.max_events:
            return False
        events.append(now_ms)
        return True

    def prune(self, now_ms: int) -> int:
        """Drop per-peer histories that are empty or wholly outside the window.

        Under open-world churn a long-lived node meets an unbounded stream
        of transient peers; without pruning the per-peer dict keys (not the
        bounded deques) are the leak.  Returns the number of peers dropped.
        """
        cutoff = now_ms - self.window_ms
        stale = [peer for peer, events in self._history.items() if not events or events[-1] < cutoff]
        for peer in stale:
            del self._history[peer]
        return len(stale)


class Node:
    """One radio node: identity, links, and per-request session state.

    Session state is keyed by request id, so a node can take part in any
    number of overlapping episodes: the :class:`SessionTable` suppresses
    duplicate copies and records the reverse path (parent, hop count) each
    request flooded in on, bounded and TTL-evicted.  The limiter is
    *shared* across episodes -- it models the node's per-neighbour traffic
    budget, not per-request bookkeeping.
    """

    __slots__ = ("node_id", "participant", "neighbours", "limiter", "sessions")

    def __init__(
        self,
        node_id: str,
        participant: Participant | None,
        neighbours: list[str],
        limiter: RateLimiter | None = None,
        session_limit: int = DEFAULT_SESSION_LIMIT,
        session_overflow: str = "evict_oldest",
    ):
        # Node ids are the hottest dict keys in the engine (node lookups,
        # limiter history, channel-fate link encoding): intern them once so
        # every later comparison is an identity hit on one shared string.
        self.node_id = sys.intern(node_id)
        self.participant = participant
        self.neighbours = [sys.intern(n) for n in neighbours]
        self.limiter = limiter or RateLimiter(max_events=50, window_ms=10_000)
        self.sessions = SessionTable(session_limit, session_overflow)


@dataclass
class FriendingResult:
    """Outcome of one simulated friending episode."""

    matches: list[MatchRecord]
    metrics: NetworkMetrics
    replies: list[Reply]
    completed_at_ms: int

    @property
    def matched_ids(self) -> list[str]:
        return [m.responder_id for m in self.matches]


class AdHocNetwork:
    """A static-snapshot MANET running the sealed-bottle protocols.

    All latency parameters are simulated milliseconds; nothing here reads
    the wall clock, so runs over this network are deterministic given
    seeded participant/initiator RNGs.  The node set is fixed at
    construction; :meth:`update_topology` rewires links (fully or
    partially) without touching per-request flood state, which is how the
    engine applies mid-run mobility refreshes.

    Parameters
    ----------
    adjacency:
        Node id → neighbour ids (from :mod:`repro.network.topology` or a
        mobility model snapshot).
    participants:
        Node id → :class:`~repro.core.protocols.Participant` (the initiator
        node may map to None; a None participant relays but never replies).
    hop_latency_ms / processing_latency_ms:
        Per-hop radio latency and per-node processing delay, in simulated
        milliseconds.
    channel:
        The :class:`~repro.network.channel_model.ChannelModel` every hop's
        frames pass through; defaults to a lossless
        :class:`~repro.network.channel_model.PerfectChannel`.
    session_limit / session_overflow:
        Per-node :class:`~repro.network.sessions.SessionTable` bound and
        overflow policy (``"evict_oldest"`` or ``"drop_new"``).
    """

    def __init__(
        self,
        adjacency: dict[str, list[str]],
        participants: dict[str, Participant | None],
        *,
        hop_latency_ms: int = 2,
        processing_latency_ms: int = 1,
        rate_limit: RateLimiter | None = None,
        rng: random.Random | None = None,
        channel: ChannelModel | None = None,
        session_limit: int = DEFAULT_SESSION_LIMIT,
        session_overflow: str = "evict_oldest",
    ):
        unknown = set(participants) - set(adjacency)
        if unknown:
            raise ValueError(f"participants reference unknown nodes: {sorted(unknown)}")
        self.adjacency = adjacency
        self.hop_latency_ms = hop_latency_ms
        self.processing_latency_ms = processing_latency_ms
        self.rng = rng or random.Random()
        self.channel = channel if channel is not None else PerfectChannel()
        # Templates reused when churn adds or crash-resets nodes mid-run.
        self._rate_limit_max = rate_limit.max_events if rate_limit else 50
        self._rate_limit_window = rate_limit.window_ms if rate_limit else 10_000
        self._session_limit = session_limit
        self._session_overflow = session_overflow
        self.nodes = {
            node: Node(
                node,
                participants.get(node),
                neigh,
                limiter=RateLimiter(
                    max_events=rate_limit.max_events if rate_limit else 50,
                    window_ms=rate_limit.window_ms if rate_limit else 10_000,
                ),
                session_limit=session_limit,
                session_overflow=session_overflow,
            )
            for node, neigh in adjacency.items()
        }

    def update_topology(self, adjacency: dict[str, list[str]]) -> None:
        """Swap neighbour lists mid-run (mobility refresh); state is kept.

        *adjacency* may be partial: only the listed nodes are rewired,
        which is what the grid-backed mobility models exploit by handing
        over just the rows that motion changed (``topology_delta``).  Only
        nodes present at construction are rewired; a refresh cannot add or
        remove nodes.
        """
        unknown = set(adjacency) - set(self.nodes)
        if unknown:
            raise ValueError(f"refresh references unknown nodes: {sorted(unknown)}")
        for node_id, neigh in adjacency.items():
            self.nodes[node_id].neighbours = [sys.intern(n) for n in neigh]
        self.adjacency.update({n: list(v) for n, v in adjacency.items()})

    def _fresh_limiter(self) -> RateLimiter:
        return RateLimiter(max_events=self._rate_limit_max, window_ms=self._rate_limit_window)

    def _link_both_ways(self, node_id: str, neighbours: list[str]) -> None:
        unknown = [n for n in neighbours if n not in self.nodes]
        if unknown:
            raise ValueError(f"neighbours reference unknown nodes: {sorted(unknown)}")
        node = self.nodes[node_id]
        node.neighbours = neighbours
        self.adjacency[node_id] = list(neighbours)
        for peer_id in neighbours:
            peer = self.nodes[peer_id]
            if node_id not in peer.neighbours:
                peer.neighbours.append(node_id)
                self.adjacency[peer_id] = list(peer.neighbours)

    def add_node(
        self,
        node_id: str,
        participant: Participant | None = None,
        neighbours: list[str] | tuple[str, ...] = (),
    ) -> Node:
        """Create a brand-new node mid-run and wire it symmetrically.

        The open-world churn plane uses this for arrivals; joiners are
        appended to each neighbour's list, which keeps broadcast receiver
        order deterministic given a deterministic arrival schedule.
        """
        node_id = sys.intern(node_id)
        if node_id in self.nodes:
            raise ValueError(f"node {node_id!r} already exists")
        node = Node(
            node_id,
            participant,
            [],
            limiter=self._fresh_limiter(),
            session_limit=self._session_limit,
            session_overflow=self._session_overflow,
        )
        self.nodes[node_id] = node
        self.adjacency[node_id] = []
        self._link_both_ways(node_id, [sys.intern(n) for n in neighbours])
        return node

    def attach_node(self, node_id: str, neighbours: list[str] | tuple[str, ...]) -> None:
        """Rewire an existing (previously detached) node back into the mesh."""
        if node_id not in self.nodes:
            raise ValueError(f"unknown node {node_id!r}")
        self._link_both_ways(sys.intern(node_id), [sys.intern(n) for n in neighbours])

    def detach_node(self, node_id: str) -> None:
        """Remove a node from the radio mesh without deleting its state.

        The Node object (sessions, limiter) survives so a sleeping node can
        wake with its flood state intact; a *crash* additionally calls
        :meth:`reset_node_state`.
        """
        node = self.nodes.get(node_id)
        if node is None:
            raise ValueError(f"unknown node {node_id!r}")
        for peer_id in node.neighbours:
            peer = self.nodes[peer_id]
            try:
                peer.neighbours.remove(node_id)
            except ValueError:
                pass
            self.adjacency[peer_id] = list(peer.neighbours)
        node.neighbours = []
        self.adjacency[node_id] = []

    def reset_node_state(self, node_id: str) -> None:
        """Lose a node's volatile state (crash semantics): sessions + limiter."""
        node = self.nodes.get(node_id)
        if node is None:
            raise ValueError(f"unknown node {node_id!r}")
        node.sessions = SessionTable(self._session_limit, self._session_overflow)
        node.limiter = self._fresh_limiter()

    def forget_node(self, node_id: str) -> None:
        """Delete a departed node outright (permanent-leave semantics).

        :meth:`detach_node` keeps the Node object so a sleeper can wake
        with its state intact.  When the caller knows the departure is
        permanent, that shell (participant, session table, limiter
        history) is dead weight -- over hours of sim time under churn it
        is the dominant leak.  The node must already be detached.
        """
        node = self.nodes.get(node_id)
        if node is None:
            raise ValueError(f"unknown node {node_id!r}")
        if node.neighbours:
            raise ValueError(f"node {node_id!r} is still attached")
        del self.nodes[node_id]
        del self.adjacency[node_id]

    def prune_rate_limiters(self, now_ms: int) -> int:
        """Prune every node's per-peer limiter history (soak housekeeping)."""
        return sum(node.limiter.prune(now_ms) for node in self.nodes.values())

    def evict_expired_sessions(self, now_ms: int) -> int:
        """Sweep expired sessions from every node (soak housekeeping).

        Eviction normally rides on ``open()``; a node that stops seeing
        fresh requests keeps its dead sessions indefinitely, which reads
        as a leak over hours of sim time.  The sweep uses the same
        expiry boundary as the on-access path, so it is semantically
        invisible.
        """
        return sum(
            node.sessions.evict_expired(now_ms) for node in self.nodes.values()
        )

    def run_friending(
        self,
        initiator_node: str,
        initiator: Initiator,
        *,
        start_ms: int = 0,
        deadline_ms: int | None = None,
        retries: int = 0,
        retransmit_timeout_ms: int | None = None,
        reliability: str = "simple",
    ) -> FriendingResult:
        """Run one full episode and return matches plus metrics.

        *retries* is the initiator's retransmission budget for an
        unanswered request (meaningful over a lossy ``channel``);
        *retransmit_timeout_ms* and *reliability* select the base wave
        timeout and the named reliability mode spending that budget
        (:mod:`repro.network.reliability`).
        """
        from repro.network.engine import (
            DEFAULT_RETRANSMIT_TIMEOUT_MS,
            EpisodeSpec,
            FriendingEngine,
        )

        engine = FriendingEngine(
            self,
            retries=retries,
            retransmit_timeout_ms=(
                DEFAULT_RETRANSMIT_TIMEOUT_MS
                if retransmit_timeout_ms is None
                else retransmit_timeout_ms
            ),
            reliability=reliability,
        )
        result = engine.run(
            [EpisodeSpec(initiator_node=initiator_node, initiator=initiator, start_ms=start_ms)],
            until_ms=deadline_ms,
        )
        episode = result.episodes[0]
        return FriendingResult(
            matches=list(initiator.matches),
            metrics=episode.metrics,
            replies=episode.replies,
            completed_at_ms=result.completed_at_ms,
        )
