"""Per-node session state for the datagram engine: bounded, TTL-evicting.

A **session** is everything one node remembers about one request id: the
reverse-path parent it first heard the request from, the hop count, the
request's validity deadline, and the highest retransmission wave it has
already forwarded.  In the pre-datagram engine this state lived in three
parallel unbounded dicts (``seen`` / ``parent`` / ``hops``); at
million-user scale unbounded per-request state is a memory leak with a
protocol attached, so the :class:`SessionTable` bounds it explicitly:

- **TTL eviction**: sessions whose request validity window has passed are
  purged lazily (amortised via an expiry min-heap) whenever a new session
  is opened.
- **Bounded size** with a declared overflow policy.  ``evict_oldest``
  (default) drops the session closest to expiry to admit the new one --
  the dropped request is near death anyway; ``drop_new`` refuses the new
  session, modelling a node that sheds load under state pressure.

Everything here is deterministic (no randomness, no wall clock), so
bounded tables preserve the engine's reproducibility guarantees.  Note
that overflow behaviour *is* cross-episode coupling: a sharded run
(``run_parallel``) gives each worker its own node copies, so sequential
and sharded results stay byte-identical only while no table overflows --
size the limit for the concurrency you simulate (the default admits
thousands of in-flight requests per node).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

__all__ = ["Session", "SessionTable", "OVERFLOW_POLICIES", "DEFAULT_SESSION_LIMIT"]

OVERFLOW_POLICIES = ("evict_oldest", "drop_new")
DEFAULT_SESSION_LIMIT = 4096


@dataclass(slots=True)
class Session:
    """One node's routing state for one request id."""

    request_id: bytes
    parent: str | None
    hops: int
    expires_ms: int
    last_seq: int = 0


class SessionTable:
    """Bounded request-id → :class:`Session` map with TTL eviction.

    Key-interning contract: callers are expected to pass one *canonical*
    bytes object per request id (the engine guarantees this -- request
    ids come off the bytes-keyed package memo, so every node's lookups
    for one flood share a single bytes object whose hash is computed
    once and cached).  The table works with arbitrary equal bytes, but
    the hot path is identity-fast only under that contract.
    """

    __slots__ = ("max_sessions", "overflow", "_sessions", "_expiry_heap",
                 "evicted_expired", "evicted_overflow", "rejected_overflow",
                 "lookup")

    def __init__(
        self,
        max_sessions: int = DEFAULT_SESSION_LIMIT,
        overflow: str = "evict_oldest",
    ):
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow!r}; choose from {OVERFLOW_POLICIES}"
            )
        self.max_sessions = max_sessions
        self.overflow = overflow
        self._sessions: dict[bytes, Session] = {}
        self._expiry_heap: list[tuple[int, bytes]] = []
        self.evicted_expired = 0
        self.evicted_overflow = 0
        self.rejected_overflow = 0
        # Bound dict-get, exposed as the documented fast path: the engine
        # performs one session lookup per delivered flood copy, and the
        # wrapper frame of :meth:`get` is measurable at that rate.
        self.lookup = self._sessions.get

    def get(self, request_id: bytes) -> Session | None:
        """The live session for *request_id*, or None (see also ``lookup``)."""
        return self._sessions.get(request_id)

    def open(
        self,
        request_id: bytes,
        *,
        parent: str | None,
        hops: int,
        expires_ms: int,
        now_ms: int,
    ) -> Session | None:
        """Admit a new session; returns None when the table refuses it.

        Expired sessions are purged first; if the table is still full the
        overflow policy decides: ``evict_oldest`` sacrifices the session
        closest to expiry, ``drop_new`` rejects the caller's.
        """
        self.evict_expired(now_ms)
        if len(self._sessions) >= self.max_sessions:
            if self.overflow == "drop_new":
                self.rejected_overflow += 1
                return None
            self._evict_one()
        session = Session(
            request_id=request_id, parent=parent, hops=hops, expires_ms=expires_ms
        )
        self._sessions[request_id] = session
        heapq.heappush(self._expiry_heap, (expires_ms, request_id))
        return session

    def evict_expired(self, now_ms: int) -> int:
        """Drop every session whose validity deadline has passed.

        The boundary matches ``RequestPackage.is_expired`` (strictly
        ``now > expiry``): a session expiring *at* ``now_ms`` is still
        live, exactly like the request it tracks -- so a frame arriving
        on the deadline still dedupes against it instead of being
        re-processed.
        """
        evicted = 0
        heap = self._expiry_heap
        while heap and heap[0][0] < now_ms:
            expires_ms, request_id = heapq.heappop(heap)
            session = self._sessions.get(request_id)
            if session is not None and session.expires_ms == expires_ms:
                del self._sessions[request_id]
                evicted += 1
        self.evicted_expired += evicted
        return evicted

    def _evict_one(self) -> None:
        """Sacrifice the live session closest to expiry (heap order)."""
        heap = self._expiry_heap
        while heap:
            expires_ms, request_id = heapq.heappop(heap)
            session = self._sessions.get(request_id)
            if session is not None and session.expires_ms == expires_ms:
                del self._sessions[request_id]
                self.evicted_overflow += 1
                return
        raise RuntimeError("session table full but expiry heap empty")  # pragma: no cover

    def export_rows(self) -> list[Session]:
        """Snapshot every live session row for a node hand-off.

        Region re-homing moves a node between shard workers; its routing
        state (reverse-path parents, wave marks, deadlines) must move with
        it or the node would re-process floods it already served.  Rows
        come out in insertion order so :meth:`adopt_rows` rebuilds an
        equivalent table deterministically.
        """
        return list(self._sessions.values())

    def adopt_rows(self, rows: list[Session]) -> None:
        """Install rows exported from another table (node hand-off).

        Rows are adopted verbatim -- same expiry deadlines, same wave
        marks -- and re-indexed on this table's expiry heap.  Existing
        rows with the same request id are replaced (the exporter owns the
        freshest state).  Adoption bypasses the overflow policy: a
        hand-off is state the node already holds, not new admission.
        """
        for row in rows:
            self._sessions[row.request_id] = row
            heapq.heappush(self._expiry_heap, (row.expires_ms, row.request_id))

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, request_id: bytes) -> bool:
        return request_id in self._sessions

    def request_ids(self) -> set[bytes]:
        """The live request ids (test/introspection helper)."""
        return set(self._sessions)
