"""Time-stepped mobile friending scenarios.

Combines the mobility model, the lattice location hashing and the protocol
stack into the paper's actual use case: phones moving through a physical
area, periodically re-deriving their dynamic location attributes, while
users fire location-private vicinity searches.  The engine measures how
well the *private* matching tracks ground-truth proximity over time
(precision / recall per search), which is the end-to-end quality metric
the paper's Sec. III-D design implies but never plots.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.core.attributes import Profile
from repro.core.location import LatticeSpec, vicinity_request
from repro.core.protocols import Initiator, Participant

__all__ = ["MobileScenario", "SearchReport", "ScenarioSummary"]


@dataclass
class SearchReport:
    """Outcome of one vicinity search at one instant."""

    time_s: float
    searcher: str
    truly_nearby: set[str]
    matched: set[str]

    @property
    def precision(self) -> float:
        """|matched ∩ nearby| / |matched| (1.0 when nothing matched)."""
        if not self.matched:
            return 1.0
        return len(self.matched & self.truly_nearby) / len(self.matched)

    @property
    def recall(self) -> float:
        """|matched ∩ nearby| / |nearby| (1.0 when nobody was nearby)."""
        if not self.truly_nearby:
            return 1.0
        return len(self.matched & self.truly_nearby) / len(self.truly_nearby)


@dataclass
class ScenarioSummary:
    """Aggregates over a full scenario run."""

    reports: list[SearchReport] = field(default_factory=list)

    @property
    def mean_precision(self) -> float:
        if not self.reports:
            return 1.0
        return sum(r.precision for r in self.reports) / len(self.reports)

    @property
    def mean_recall(self) -> float:
        if not self.reports:
            return 1.0
        return sum(r.recall for r in self.reports) / len(self.reports)

    @property
    def searches(self) -> int:
        return len(self.reports)


class MobileScenario:
    """N phones wandering an area; periodic location-private searches.

    Parameters
    ----------
    n_nodes:
        Number of phones.
    area_m:
        Side length of the square area in metres (mobility runs in the
        unit square and is scaled up).
    cell_m / search_range_m / theta:
        Lattice cell size d, vicinity range D and overlap threshold Θ.
    speed_mps:
        (min, max) walking speed in metres/second.
    """

    def __init__(
        self,
        n_nodes: int = 20,
        *,
        area_m: float = 500.0,
        cell_m: float = 10.0,
        search_range_m: float = 40.0,
        theta: float = 0.45,
        speed_mps: tuple[float, float] = (0.5, 2.0),
        p: int = 1009,
        seed: int = 0,
    ):
        from repro.network.mobility import RandomWaypoint

        self.area_m = area_m
        self.spec = LatticeSpec(d=cell_m)
        self.search_range_m = search_range_m
        self.theta = theta
        self.p = p
        self.rng = random.Random(seed)
        self.node_ids = [f"phone{i}" for i in range(n_nodes)]
        self.mobility = RandomWaypoint(
            self.node_ids,
            min_speed=speed_mps[0] / area_m,
            max_speed=speed_mps[1] / area_m,
            pause_s=5.0,
            seed=seed,
        )
        self.time_s = 0.0

    def positions_m(self) -> dict[str, tuple[float, float]]:
        """Current physical positions in metres."""
        return {
            node: (x * self.area_m, y * self.area_m)
            for node, (x, y) in self.mobility.positions().items()
        }

    def step(self, dt_s: float) -> None:
        """Advance physical time."""
        self.mobility.step(dt_s)
        self.time_s += dt_s

    def _participant_for(self, node: str) -> Participant:
        """Fresh participant with the node's *current* vicinity profile.

        Location is a dynamic attribute: the profile is rebuilt from the
        current position at processing time (the paper's update-on-move).
        """
        x, y = self.positions_m()[node]
        attrs = self.spec.vicinity_attributes(x, y, self.search_range_m)
        return Participant(Profile(attrs, user_id=node, normalized=True), rng=self.rng)

    def run_concurrent_searches(
        self,
        searchers: list[str],
        *,
        radio_range_m: float = 100.0,
        arrival_ms: int = 50,
        protocol: int = 1,
    ) -> list[SearchReport]:
        """Several users search at once over the *actual* radio topology.

        Unlike :meth:`run_search` (oracle delivery to every node), this
        floods each request through a unit-disk MANET snapshot via the
        concurrent engine, so requests compete for the same relays and a
        vicinity search can also fail simply because the flood never
        reached a nearby phone.  The snapshot is served by the mobility
        model's spatial grid, so city-scale populations stay O(n · k)
        rather than all-pairs.  Deterministic for the scenario's seed.
        """
        from repro.core.protocols import Initiator
        from repro.network.engine import FriendingEngine
        from repro.network.simulator import AdHocNetwork

        positions = self.positions_m()
        adjacency = self.mobility.snapshot_topology(radio_range_m / self.area_m)
        participants = {node: self._participant_for(node) for node in self.node_ids}

        now_ms = int(self.time_s * 1000)
        launches = []
        for searcher in searchers:
            sx, sy = positions[searcher]
            request = vicinity_request(self.spec, sx, sy, self.search_range_m, self.theta)
            launches.append(
                (searcher, Initiator(request, protocol=protocol, p=self.p, rng=self.rng))
            )

        network = AdHocNetwork(adjacency, participants)
        result = FriendingEngine(network).run_staggered(
            launches, arrival_ms=arrival_ms, start_ms=now_ms
        )

        reports = []
        for episode in result.episodes:
            searcher = episode.initiator_node
            sx, sy = positions[searcher]
            truly_nearby = {
                node
                for node in self.node_ids
                if node != searcher
                and math.dist(positions[node], (sx, sy)) <= self.search_range_m
            }
            reports.append(SearchReport(
                time_s=self.time_s, searcher=searcher,
                truly_nearby=truly_nearby,
                matched=set(episode.matched_ids) - {searcher},
            ))
        return reports

    def run_search(self, searcher: str) -> SearchReport:
        """One location-private vicinity search by *searcher*, right now."""
        positions = self.positions_m()
        sx, sy = positions[searcher]
        request = vicinity_request(self.spec, sx, sy, self.search_range_m, self.theta)
        initiator = Initiator(request, protocol=1, p=self.p, rng=self.rng)
        package = initiator.create_request(now_ms=int(self.time_s * 1000))

        matched = set()
        for node in self.node_ids:
            if node == searcher:
                continue
            participant = self._participant_for(node)
            reply = participant.handle_request(package, now_ms=int(self.time_s * 1000) + 1)
            if reply is not None and initiator.handle_reply(
                reply, now_ms=int(self.time_s * 1000) + 2
            ):
                matched.add(node)

        truly_nearby = {
            node
            for node in self.node_ids
            if node != searcher
            and math.dist(positions[node], (sx, sy)) <= self.search_range_m
        }
        return SearchReport(
            time_s=self.time_s, searcher=searcher,
            truly_nearby=truly_nearby, matched=matched,
        )

    def run(
        self,
        duration_s: float,
        *,
        search_interval_s: float = 30.0,
        dt_s: float = 5.0,
    ) -> ScenarioSummary:
        """Run the full timeline; a random node searches every interval."""
        summary = ScenarioSummary()
        next_search = 0.0
        while self.time_s < duration_s:
            if self.time_s >= next_search:
                searcher = self.rng.choice(self.node_ids)
                summary.reports.append(self.run_search(searcher))
                next_search += search_interval_s
            self.step(min(dt_s, duration_s - self.time_s))
        return summary
