"""Named reliability modes: how an episode survives a lossy channel.

The engine's original answer to loss was one blunt knob -- ``retries=N``
blind re-floods of the whole request after a hard-coded timeout.  This
module makes reply/request reliability a first-class, named **mode
profile** (the ``reliability_method ∈ {simple, stage, window,
window_fec}`` idiom), selected by name on
:class:`~repro.network.engine.FriendingEngine`,
:class:`~repro.analysis.experiments.ScenarioSpec` and the CLI:

``simple``
    Today's blind re-flood, byte-frozen: every wave re-broadcasts the
    whole request at a constant timeout.  With the same ``retries`` /
    ``retransmit_timeout_ms`` the engine takes exactly the pre-mode code
    path -- same channel draws, same event order, same goldens.
``stage``
    The same full re-flood waves on an escalating timetable: the gap
    before wave *k* is ``timeout * 2**(k-1)``, so early waves are cheap
    and later waves patient.  Same frames as ``simple``, different
    timings.
``window``
    Replies travel as per-element **segment frames**
    (``docs/wire_format.md``, frame version 2); the initiator tracks
    which segments of each responder's reply arrived and a wave
    re-sends only the missing segments back along the recorded reply
    path (counted as ``selective_retx``), falling back to a full
    re-flood only while nothing at all has been heard.
``window_fec``
    Segmented replies plus forward error correction: the responder
    appends one XOR **parity element** per window of
    :data:`DEFAULT_FEC_WINDOW` data elements, so the initiator
    reconstructs any single lost element per window (counted as
    ``fec_recovered``) with **zero** extra round trips -- graceful
    degradation instead of retransmission (no waves are scheduled).

Determinism: a mode only decides *what* is (re)sent and *when*; every
frame still draws its fate from ``(channel seed, flow, link, seq)``,
so all four modes keep the house contract -- ``run_parallel`` shards
stay byte-identical to sequential runs.

The XOR parity algebra lives here as pure functions
(:func:`fec_parity_elements` / :func:`fec_reconstruct`) so the
recovery property can be pinned independently of the engine
(``tests/network/test_reliability.py`` holds the Hypothesis property
that reconstruction returns exactly the original element set under any
loss pattern within the parity budget).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "DEFAULT_FEC_WINDOW",
    "DEFAULT_RELIABILITY",
    "RELIABILITY_MODES",
    "ReliabilityMode",
    "available_reliability_modes",
    "load_reliability_mode",
    "fec_parity_elements",
    "fec_reconstruct",
    "xor_bytes",
]

#: Data elements covered by one XOR parity element in ``window_fec``.
DEFAULT_FEC_WINDOW = 4

DEFAULT_RELIABILITY = "simple"


@dataclass(frozen=True)
class ReliabilityMode:
    """One named reliability strategy (picklable: plain field data only).

    ``wave_backoff`` is the per-wave timeout multiplier: the gap before
    wave *k* is ``timeout * wave_backoff**(k-1)``.  ``segmented`` selects
    the per-element reply segment transport (frame version 2);
    ``fec_window`` > 0 appends one XOR parity element per window of that
    many data elements; ``selective_retx`` makes waves re-send only the
    reply segments the initiator is still missing; ``waves`` gates
    retransmission scheduling entirely (``window_fec`` recovers without
    round trips, so it never re-floods regardless of ``retries``).
    """

    name: str
    description: str
    waves: bool = True
    wave_backoff: float = 1.0
    segmented: bool = False
    fec_window: int = 0
    selective_retx: bool = False

    def wave_delay_ms(self, attempt: int, base_timeout_ms: int) -> int:
        """Gap (ms) between wave ``attempt - 1`` and wave ``attempt``.

        Wave 1 always fires exactly one base timeout after the initial
        broadcast; ``simple`` (backoff 1.0) keeps every later gap at the
        base timeout, which is byte-for-byte the pre-mode schedule.
        """
        if attempt < 1:
            raise ValueError(f"wave attempt must be >= 1, got {attempt!r}")
        return max(1, round(base_timeout_ms * self.wave_backoff ** (attempt - 1)))


RELIABILITY_MODES: dict[str, ReliabilityMode] = {
    "simple": ReliabilityMode(
        name="simple",
        description="blind full re-flood at a constant timeout (the byte-frozen baseline)",
    ),
    "stage": ReliabilityMode(
        name="stage",
        description="full re-flood on an escalating timetable (timeout doubles per wave)",
        wave_backoff=2.0,
    ),
    "window": ReliabilityMode(
        name="window",
        description="segmented replies; waves re-send only the missing reply segments",
        segmented=True,
        selective_retx=True,
    ),
    "window_fec": ReliabilityMode(
        name="window_fec",
        description=(
            "segmented replies with one XOR parity element per "
            f"{DEFAULT_FEC_WINDOW}-element window; no retransmission waves"
        ),
        waves=False,
        segmented=True,
        fec_window=DEFAULT_FEC_WINDOW,
    ),
}


def available_reliability_modes() -> tuple[str, ...]:
    """All built-in mode names, in escalation order."""
    return tuple(RELIABILITY_MODES)


def load_reliability_mode(name: str | ReliabilityMode) -> ReliabilityMode:
    """Look up one mode by name; unknown names list what exists.

    A :class:`ReliabilityMode` instance passes through unchanged so the
    engine can accept either spelling.
    """
    if isinstance(name, ReliabilityMode):
        return name
    try:
        return RELIABILITY_MODES[name]
    except KeyError:
        known = ", ".join(RELIABILITY_MODES)
        raise ValueError(
            f"unknown reliability mode {name!r}; available: {known}"
        ) from None


# -- XOR parity algebra ------------------------------------------------------


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Bytewise XOR of two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"cannot XOR {len(a)} bytes with {len(b)} bytes")
    return bytes(x ^ y for x, y in zip(a, b))


def fec_parity_elements(elements: Sequence[bytes], window: int) -> list[bytes]:
    """One XOR parity element per *window* of data elements.

    Parity *w* covers data elements ``[w*window, min((w+1)*window, n))``;
    the final window may be short and its parity covers only what exists.
    All elements must share one length (48 bytes on the wire).
    """
    if window < 1:
        raise ValueError(f"fec window must be >= 1, got {window!r}")
    parities: list[bytes] = []
    for start in range(0, len(elements), window):
        chunk = elements[start : start + window]
        parity = chunk[0]
        for element in chunk[1:]:
            parity = xor_bytes(parity, element)
        parities.append(parity)
    return parities


def fec_reconstruct(
    n_data: int,
    window: int,
    data: dict[int, bytes],
    parity: dict[int, bytes],
) -> tuple[dict[int, bytes], list[int]]:
    """Fill single-loss holes from XOR parity; pure, no wire knowledge.

    *data* maps received data-element indices (``0 <= i < n_data``) to
    their 48-byte elements; *parity* maps window indices to received
    parity elements.  A window missing exactly one data element whose
    parity arrived is solved by XOR-ing the parity with the window's
    survivors; windows missing more than one element (or their parity)
    are left as they are -- that is the parity budget.

    Returns ``(completed, recovered)``: a new index→element map holding
    everything received plus everything reconstructed, and the sorted
    list of indices that were recovered rather than received.
    """
    if window < 1:
        raise ValueError(f"fec window must be >= 1, got {window!r}")
    completed = dict(data)
    recovered: list[int] = []
    for w, p in parity.items():
        start = w * window
        stop = min(start + window, n_data)
        if not start < stop:
            continue  # parity for a window past the data: ignore
        missing = [i for i in range(start, stop) if i not in completed]
        if len(missing) != 1:
            continue
        value = p
        for i in range(start, stop):
            if i != missing[0]:
                value = xor_bytes(value, completed[i])
        completed[missing[0]] = value
        recovered.append(missing[0])
    recovered.sort()
    return completed, recovered
