"""Region-sharded city runtime: partition the metro, not the episodes.

``run_parallel`` shards *episodes* across cores; this module shards the
*city*.  A :class:`RegionPartition` cuts the unit square into contiguous
x-stripes (balanced on the node population), and the
:class:`RegionShardedEngine` runs one calendar queue per region, each
owning exactly the events of its resident nodes.  Boundary-crossing
frames travel between shards through per-epoch outboxes and are merged
deterministically, so the drain order -- and therefore every byte of the
result -- is independent of worker interleaving.

Why this can be byte-identical at all
-------------------------------------
Two properties carry the whole design:

1. **Channel purity** (PR 4): every per-link fate is a pure function of
   ``(seed, flow, link, seq)``.  No hidden RNG stream threads through the
   event order, so executing the same events in a different global
   interleaving draws the same fates.
2. **Genealogy keys**: every event carries a key
   ``K = (sched_time, K_parent, (sub, child))`` -- the time its parent
   executed, the parent's own key, and the child's position among its
   siblings (``sub`` is the receiver slot inside a split delivery batch,
   ``child`` a per-receiver counter).  Root events scheduled at setup get
   ``K = (first_start, (), (0, i))`` in setup order.  By induction,
   lexicographic ``(fire_time, K)`` order over all events equals the
   sequential queue's ``(fire_time, schedule_seq)`` order exactly: a
   parent that executed earlier (smaller time, or equal time and smaller
   key) scheduled its children earlier, and the empty root parent tuple
   sorts before every runtime parent.  Each worker drains its queue in
   ``(fire_time, K)`` order, so each worker's slice of the execution is
   the sequential order restricted to that worker.

What still has to be synchronised is *when* a worker may run: a worker
may only advance through the window ``[T, T + L)`` (``T`` the global
earliest pending event, ``L = min(hop_latency_ms,
processing_latency_ms)``), because every cross-region event is created
at least ``L`` after its parent -- deliveries arrive one hop of latency
(plus non-negative jitter) after a broadcast, and reply/record hand-offs
leave at processing latency.  At each window barrier the outboxes are
exchanged and merged into the destination queues in sorted
``(fire_time, K)`` order.  Within one region every event-order-sensitive
piece of state is local: per-node session tables and rate limiters
belong to the node's region, the initiator endpoint state (replies,
segment reassembly) to the episode's home region (the region of its
initiator node), and per-episode metrics are commutative counters.  The
one sender-side structure read at the home -- the ``window`` mode's
segment record -- travels as an explicit
:class:`~repro.network.events.SegmentRecordEvent`.

Node re-homing
--------------
Mobility can march a node across a stripe boundary.  Refreshes execute
as coordinator *barriers*: all workers drain up to the refresh's
``(time, K)`` position, outboxes flush, the mobility model steps and the
topology rewires (exactly the sequential handler), and then every node
is re-assigned to the stripe its new position falls in.  Re-homing a
node hands over everything it owns without perturbing any ordering: its
per-node state travels with the shared/forked ``Node`` object (session
rows included -- see :meth:`repro.network.sessions.SessionTable.export_rows`
for the explicit hand-off form), and its pending calendar entries move
queue-to-queue with their ``(fire_time, K)`` keys intact, split
delivery batches included.  Because ``(fire_time, K)`` is a *global*
order, an entry is drained at the same point of the execution whichever
queue it sits in.

Transports
----------
``inline``
    One process, R queues, the coordinator loop in this module.  The
    reference implementation: supports mobility (re-homing), shares the
    caller's network/initiator objects like :meth:`FriendingEngine.run`.
``process``
    R forked workers (copy-on-write network, no big pickles), pipes
    carrying drain/push commands and outboxes, per-worker episode copies
    merged at the end (each metrics counter increments in exactly one
    worker).  Mobility is rejected, like ``run_parallel`` -- a refresh
    is a cross-shard side effect with state hand-off; use ``inline``.
``auto``
    ``process`` when fork is available and no mobility model is
    configured, else ``inline``.

Both transports are pinned byte-identical to the sequential engine by
``tests/network/test_engine_sharded.py`` (lossy 10k city, channel v1/v2,
all four reliability modes, mid-flood re-homing).
"""

from __future__ import annotations

import heapq
import multiprocessing
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any

from repro.core.exceptions import SerializationError
from repro.core.wire import FT_REQUEST
from repro.network.engine import EngineResult, EpisodeResult, EpisodeSpec, FriendingEngine
from repro.network.events import (
    BroadcastEvent,
    DeliveryEvent,
    FrameEvent,
    SegmentRecordEvent,
    TopologyRefreshEvent,
)
from repro.network.metrics import NetworkMetrics
from repro.network.simulator import AdHocNetwork

__all__ = ["RegionPartition", "RegionShardedEngine", "RegionDeliveryEvent"]

_TRANSPORTS = ("auto", "inline", "process")


class RegionPartition:
    """Contiguous x-stripe partition of the unit square.

    Stripe boundaries are placed at x-quantiles of the node population,
    so an even density gets near-equal populations per region.  A node's
    region is a pure function of its x coordinate
    (:meth:`region_of`), which is what makes re-homing natural: motion
    changes the coordinate, the coordinate names the owner.

    ``cuts`` is the sorted tuple of R-1 stripe boundaries; region ``r``
    owns ``cuts[r-1] <= x < cuts[r]`` (with virtual cuts at -inf/+inf).
    A node exactly on a cut belongs to the stripe above it, so every
    position maps to exactly one region.  Duplicate x coordinates can
    leave a stripe empty; that is allowed (an empty region simply never
    owns events).
    """

    __slots__ = ("regions", "cuts")

    def __init__(self, regions: int, cuts: tuple[float, ...]):
        if regions < 1:
            raise ValueError("regions must be >= 1")
        if len(cuts) != regions - 1:
            raise ValueError(f"{regions} regions need {regions - 1} cuts, got {len(cuts)}")
        if any(b < a for a, b in zip(cuts, cuts[1:])):
            raise ValueError("cuts must be sorted")
        self.regions = regions
        self.cuts = tuple(cuts)

    @classmethod
    def from_positions(
        cls, positions: dict[str, tuple[float, float]], regions: int
    ) -> "RegionPartition":
        """Balanced stripes: boundaries at x-quantiles of *positions*."""
        if regions < 1:
            raise ValueError("regions must be >= 1")
        if not positions and regions > 1:
            raise ValueError("cannot partition an empty city into multiple regions")
        xs = sorted(x for x, _ in positions.values())
        n = len(xs)
        cuts = tuple(xs[min(n - 1, (n * r) // regions)] for r in range(1, regions))
        return cls(regions, cuts)

    def region_of(self, x: float) -> int:
        """The region owning x coordinate *x* (bisect on the cuts)."""
        return bisect_right(self.cuts, x)

    def assign(self, positions: dict[str, tuple[float, float]]) -> dict[str, int]:
        """node id -> owning region, for every node in *positions*."""
        cuts = self.cuts
        return {node: bisect_right(cuts, p[0]) for node, p in positions.items()}

    def counts(self, positions: dict[str, tuple[float, float]]) -> list[int]:
        """Population per region (balance introspection/tests)."""
        out = [0] * self.regions
        for node, p in positions.items():
            out[bisect_right(self.cuts, p[0])] += 1
        return out


@dataclass(frozen=True, slots=True)
class RegionDeliveryEvent:
    """One region's slice of a split :class:`DeliveryEvent`.

    ``positions`` carries each receiver's slot index in the *original*
    unsplit batch: children scheduled while handling receiver ``p`` are
    keyed ``(p, j)``, so the children of sibling slices -- which share
    the parent key but live in different queues -- interleave exactly as
    the sequential single-batch processing order did.
    """

    episode: int
    from_node: str
    deliveries: tuple[tuple[str, Any], ...]
    positions: tuple[int, ...]


class _ShardClock:
    """Stand-in for the event queue: handlers only read ``now_ms``."""

    __slots__ = ("now_ms",)

    def __init__(self, start_ms: int):
        self.now_ms = start_ms


def _entry_key(entry):
    return (entry[1], entry[2])


def _shard_worker_main(engine: "RegionShardedEngine", region: int, conn) -> None:
    """Forked worker loop: drain/push/finish commands over one pipe."""
    queue = engine._region_queues[region]
    while True:
        msg = conn.recv()
        cmd = msg[0]
        if cmd == "drain":
            engine._outbox = []
            last = engine._drain_region(region, msg[1])
            head = (queue[0][0], queue[0][1]) if queue else None
            conn.send((engine._outbox, head, last))
        elif cmd == "push":
            engine._adopt_entries(region, msg[1])
        else:  # "finish"
            conn.send(engine._finish_payload(region))
            conn.close()
            return


class RegionShardedEngine(FriendingEngine):
    """A :class:`FriendingEngine` whose city is sharded into regions.

    Parameters beyond the base engine's:

    positions:
        node id -> (x, y) for every network node, the coordinates the
        topology was built from; the partition is cut from these.
    regions:
        Stripe count.  ``regions=1`` is exactly the sequential engine.
    partition:
        Optional pre-built :class:`RegionPartition` (defaults to
        balanced stripes from *positions*).
    transport:
        ``"auto"`` (default), ``"inline"`` or ``"process"`` -- see the
        module docstring.

    With ``regions > 1`` the engine additionally requires
    ``min(hop_latency_ms, processing_latency_ms) >= 1`` (the
    conservative epoch lookahead) and rejects a ``frame_tap`` (tap call
    order is interleaving-dependent).
    """

    def __init__(
        self,
        network: AdHocNetwork,
        *,
        positions: dict[str, tuple[float, float]],
        regions: int,
        partition: RegionPartition | None = None,
        transport: str = "auto",
        **kwargs,
    ):
        super().__init__(network, **kwargs)
        if not isinstance(regions, int) or regions < 1:
            raise ValueError("regions must be a positive integer")
        missing = set(network.nodes) - set(positions)
        if missing:
            raise ValueError(
                f"positions missing for {len(missing)} nodes, e.g. {sorted(missing)[:3]}"
            )
        if transport not in _TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}; choose from {_TRANSPORTS}")
        if regions > 1:
            lookahead = min(network.hop_latency_ms, network.processing_latency_ms)
            if lookahead < 1:
                raise ValueError(
                    "region sharding needs hop_latency_ms and processing_latency_ms "
                    ">= 1: the conservative window is their minimum"
                )
            if self.frame_tap is not None:
                raise ValueError(
                    "frame_tap call order is interleaving-dependent; "
                    "capture frames with a sequential run"
                )
        self.regions = regions
        self.transport = transport
        self.partition = (
            partition
            if partition is not None
            else RegionPartition.from_positions(positions, regions)
        )
        if self.partition.regions != regions:
            raise ValueError("partition.regions does not match regions")
        self._initial_positions = dict(positions)
        self._handlers[RegionDeliveryEvent] = self._on_region_delivery
        self._handlers[SegmentRecordEvent] = self._on_segment_record
        # Per-run shard state (rebuilt by _make_queue).
        self._region_queues: list[list] = []
        self._region_seq: list[int] = []
        self._outbox: list[tuple[int, int, tuple, Any]] = []
        self._node_region: dict[str, int] = {}
        self._current_region: int | None = None
        self._current_key: tuple = ()
        self._sub_idx = 0
        self._child_n = 0
        self._next_refresh: tuple[int, tuple, int] | None = None
        # Open-world stepping: the injected-root key context (see
        # _begin_roots) and the per-step executed-event counter.
        self._root_ctx_ms: int | None = None
        self._root_child_n = 0
        self._step_executed = 0

    # -- run orchestration ---------------------------------------------------

    def run(self, specs: list[EpisodeSpec], *, until_ms: int | None = None) -> EngineResult:
        if self.regions == 1:
            return super().run(specs, until_ms=until_ms)
        transport = self._resolve_transport()
        if transport == "process":
            return self._run_process(specs, until_ms)
        first_start = self._setup_run(specs, until_ms)
        self._route_outbox()
        self._queue.now_ms = self._coordinate_inline(until_ms)
        return self._collect_results(first_start)

    # -- open-world lifecycle (inline transport) -----------------------------

    def begin(self, specs=(), *, start_ms: int = 0) -> None:
        """Open-world entry: like the base, plus shard routing.

        Stepping drives the in-process coordinator loop, so the forked
        ``process`` transport is rejected (``auto`` silently uses inline).
        Setup admissions ride the ordinary ``_setup_run`` root context and
        land in the outbox; routing them completes the closed-world-
        identical starting state.
        """
        if self.regions > 1 and self.transport == "process":
            raise ValueError(
                "open-world stepping drives the inline coordinator; "
                "transport='process' supports run() only"
            )
        super().begin(specs, start_ms=start_ms)
        if self.regions > 1:
            self._route_outbox()

    def step(self, until_ms: int | None = None) -> int:
        if self.regions == 1:
            return super().step(until_ms)
        if not self._open_world:
            raise RuntimeError("step() requires begin() first")
        self._step_executed = 0
        self._route_outbox()
        completed = self._coordinate_inline(until_ms)
        self._queue.now_ms = completed
        self._retire_settled()
        return self._step_executed

    def _begin_roots(self) -> None:
        """Open the mid-run injection root context (regions > 1).

        Injected roots get genealogy key ``(L, (inf,), (0, n))`` where
        ``L`` is the last executed timestamp and ``n`` a per-``L`` counter.
        The ``(inf,)`` parent is the linchpin: every event already in the
        queues was scheduled by a parent that executed at ``t_p <= L``
        (key ``(t_p, K_p, ...)`` with ``K_p`` a finite tuple or ``()``),
        so it sorts *before* the injection -- matching its smaller
        sequential schedule seq -- while events scheduled by parents
        executing after the injection boundary carry ``t_p > L`` and sort
        *after* it, again matching sequential order.  Same-boundary
        injections stay ordered by ``n``.
        """
        if self.regions == 1:
            return
        now = self._queue.now_ms
        if self._root_ctx_ms != now:
            self._root_ctx_ms = now
            self._root_child_n = 0
        self._current_region = None
        self._current_key = (float("inf"),)
        self._sub_idx = 0
        self._child_n = self._root_child_n

    def _end_roots(self) -> None:
        if self.regions == 1:
            return
        self._root_child_n = self._child_n
        self._current_key = ()
        self._route_outbox()

    def _note_joined(self, node_id: str, position) -> None:
        """Home a joining (or waking) node in the stripe its position names."""
        if self.regions == 1:
            return
        if position is None:
            raise ValueError(
                "regions > 1 needs the joining node's (x, y) position "
                "to home it in a stripe"
            )
        self._node_region[node_id] = self.partition.region_of(position[0])

    def restart_region(self, region: int) -> int:
        """Kill and recover one region worker: rebuild its queue from scratch.

        Models a shard-worker death where the durable state (the exported
        calendar entries with their genealogy keys) survives and the
        worker restarts from it.  Genealogy keys give a *global* total
        order with the local seq only breaking (t, K) ties between
        sibling delivery slices, so a rebuild that re-adopts the exported
        entries in their previous drain order is provably
        order-preserving: the run continues byte-identically (pinned by
        ``tests/network/test_faults.py``).  Returns the number of entries
        recovered; regions == 1 has no workers to kill (returns 0).
        """
        if self.regions == 1:
            return 0
        if not 0 <= region < self.regions:
            raise ValueError(f"region must be in [0, {self.regions}), got {region}")
        queue = self._region_queues[region]
        # Sorting the raw heap entries (time, key, seq, event) reproduces
        # the exact previous pop order, seq ties included.
        entries = [(t, k, e) for t, k, _, e in sorted(queue, key=lambda en: en[:3])]
        self._region_queues[region] = []
        self._region_seq[region] = 0
        self._adopt_entries(region, entries)
        self.region_restarts += 1
        return len(entries)

    def _resolve_transport(self) -> str:
        fork_ok = "fork" in multiprocessing.get_all_start_methods()
        if self.transport == "process":
            if self.mobility is not None:
                raise ValueError(
                    "the process transport does not support mid-run topology "
                    "refresh (cross-shard state hand-off); use transport='inline'"
                )
            if not fork_ok:
                raise ValueError("the process transport needs fork-based multiprocessing")
            return "process"
        if self.transport == "inline":
            return "inline"
        return "process" if self.mobility is None and fork_ok else "inline"

    def _make_queue(self, first_start: int):
        if self.regions == 1:
            return super()._make_queue(first_start)
        regions = self.regions
        self._region_queues = [[] for _ in range(regions)]
        self._region_seq = [0] * regions
        self._outbox = []
        self._node_region = self.partition.assign(self._initial_positions)
        self._current_region = None
        self._current_key = ()
        self._sub_idx = 0
        self._child_n = 0
        self._next_refresh = None
        self._root_ctx_ms = None
        self._root_child_n = 0
        self._step_executed = 0
        return _ShardClock(first_start)

    def _lookahead(self) -> int:
        return min(self.network.hop_latency_ms, self.network.processing_latency_ms)

    def _coordinate_inline(self, until_ms: int | None) -> int:
        """Drive the epoch loop over the in-process region queues.

        Returns the timestamp of the last executed event (the sequential
        queue's final ``now_ms``).
        """
        lookahead = self._lookahead()
        queues = self._region_queues
        regions = self.regions
        completed = self._queue.now_ms
        while True:
            head = None
            for queue in queues:
                if queue:
                    key = (queue[0][0], queue[0][1])
                    if head is None or key < head:
                        head = key
            refresh = self._next_refresh
            if refresh is not None:
                refresh_pos = (refresh[0], refresh[1])
                if head is None or refresh_pos < head:
                    if until_ms is not None and refresh[0] > until_ms:
                        break
                    completed = max(completed, refresh[0])
                    self._refresh_barrier()
                    continue
            if head is None:
                break
            if until_ms is not None and head[0] > until_ms:
                break
            bound = (head[0] + lookahead, ())
            if refresh is not None and refresh_pos < bound:
                bound = refresh_pos
            if until_ms is not None and (until_ms + 1, ()) < bound:
                bound = (until_ms + 1, ())
            for region in range(regions):
                last = self._drain_region(region, bound)
                if last is not None and last > completed:
                    completed = last
            self._route_outbox()
        return completed

    # -- the shard worker (shared by both transports) ------------------------

    def _drain_region(self, region: int, bound: tuple) -> int | None:
        """Run *region*'s events strictly below *bound* = ``(time, K)``.

        ``(t, K) < (limit, ())`` is equivalent to ``t < limit`` (the
        empty tuple sorts below every key), so plain window edges and
        refresh positions use one comparison form.  Returns the last
        executed timestamp, or None if nothing was due.
        """
        queue = self._region_queues[region]
        clock = self._queue
        handlers = self._handlers
        open_world = self._open_world
        last = None
        self._current_region = region
        while queue:
            entry = queue[0]
            if (entry[0], entry[1]) >= bound:
                break
            heapq.heappop(queue)
            time_ms, key, _, event = entry
            clock.now_ms = last = time_ms
            self._current_key = key
            self._sub_idx = 0
            self._child_n = 0
            if open_world:
                self._step_executed += 1
                self._pending_episode_events -= 1
                self._pending_by_episode[event.episode] -= 1
            handlers[type(event)](event)
        return last

    def _adopt_entries(self, region: int, entries: list[tuple[int, tuple, Any]]) -> None:
        """Merge routed entries into *region*'s queue, deterministically.

        Entries are pushed in sorted ``(time, K)`` order so the local
        tie-break sequence extends the global total order.
        """
        entries.sort(key=lambda e: (e[0], e[1]))
        queue = self._region_queues[region]
        seq = self._region_seq[region]
        for time_ms, key, event in entries:
            heapq.heappush(queue, (time_ms, key, seq, event))
            seq += 1
        self._region_seq[region] = seq

    def _route_outbox(self) -> None:
        """Deliver every outbox entry to its destination region queue."""
        box = self._outbox
        if not box:
            return
        self._outbox = []
        box.sort(key=_entry_key)
        by_dest: dict[int, list] = {}
        for dest, time_ms, key, event in box:
            by_dest.setdefault(dest, []).append((time_ms, key, event))
        for dest, entries in by_dest.items():
            self._adopt_entries(dest, entries)

    # -- event scheduling (genealogy keys + routing) -------------------------

    def _schedule(self, delay_ms: int, event) -> None:
        if self.regions == 1:  # delegated run: the base queue owns order
            super()._schedule(delay_ms, event)
            return
        now = self._queue.now_ms
        key = (now, self._current_key, (self._sub_idx, self._child_n))
        self._child_n += 1
        cls = type(event)
        if cls is DeliveryEvent:
            self._split_delivery(now + delay_ms, key, event)
            return
        if cls is BroadcastEvent or cls is FrameEvent:
            dest = self._node_region[event.node]
        else:
            # Reply hops, retransmission timers, segment flushes and
            # segment records all execute at the episode's home: the
            # region its initiator node currently lives in.
            dest = self._node_region[self._episodes[event.episode].spec.initiator_node]
        self._push(dest, now + delay_ms, key, event)

    def _split_delivery(self, time_ms: int, key: tuple, event: DeliveryEvent) -> None:
        """Split one delivery batch into per-region slices sharing *key*."""
        node_region = self._node_region
        parts: dict[int, tuple[list, list]] = {}
        for position, pair in enumerate(event.deliveries):
            dest = node_region[pair[0]]
            part = parts.get(dest)
            if part is None:
                part = parts[dest] = ([], [])
            part[0].append(pair)
            part[1].append(position)
        for dest, (pairs, positions) in parts.items():
            self._push(
                dest, time_ms, key,
                RegionDeliveryEvent(event.episode, event.from_node,
                                    tuple(pairs), tuple(positions)),
            )

    def _push(self, dest: int, time_ms: int, key: tuple, event) -> None:
        if self._open_world:
            # Every scheduled entry passes through here exactly once
            # (delivery slices count individually); _drain_region is the
            # matching decrement.  None of the shard event types lack an
            # episode field.
            self._pending_episode_events += 1
            pending = self._pending_by_episode
            pending[event.episode] = pending.get(event.episode, 0) + 1
        if dest == self._current_region:
            seq = self._region_seq[dest]
            self._region_seq[dest] = seq + 1
            heapq.heappush(self._region_queues[dest], (time_ms, key, seq, event))
        else:
            self._outbox.append((dest, time_ms, key, event))

    def _schedule_refresh_event(self, delay_ms: int, event: TopologyRefreshEvent) -> None:
        if self.regions == 1:
            super()._schedule_refresh_event(delay_ms, event)
            return
        now = self._queue.now_ms
        key = (now, self._current_key, (self._sub_idx, self._child_n))
        self._child_n += 1
        self._next_refresh = (now + delay_ms, key, event.interval_ms)

    def _record_segments(self, episode, responder, via, hops, record) -> None:
        if self.regions == 1:
            super()._record_segments(episode, responder, via, hops, record)
            return
        # Ship the sender-side segment record to the episode home as an
        # explicit event (see SegmentRecordEvent): provably unobservable
        # before any reader, identical under both transports.
        self._schedule(
            self.network.processing_latency_ms,
            SegmentRecordEvent(episode.index, responder, via, hops, record),
        )

    # -- handlers ------------------------------------------------------------

    def _on_segment_record(self, event: SegmentRecordEvent) -> None:
        self._episodes[event.episode].seg_sent[event.responder] = (
            event.via, event.hops, event.record,
        )

    def _on_region_delivery(self, event: RegionDeliveryEvent) -> None:
        """One region's slice of a delivery batch.

        Body mirrors :meth:`FriendingEngine._on_delivery`, additionally
        tracking each receiver's original batch slot so child keys
        ``(slot, j)`` interleave exactly like the unsplit processing
        order.  (Receiver processing order *within* one instant is
        otherwise free: receivers are distinct nodes, metrics commute,
        and reply ordering is decided downstream by the child keys.)
        """
        episode = self._episodes[event.episode]
        episode.last_event_ms = self._queue.now_ms
        metrics = episode.metrics
        nodes = self.network.nodes
        from_node = event.from_node
        departed = self._departed
        last_data: object = None
        frame = None
        package = None
        rid = b""
        seq = 0
        for position, (node_id, data) in zip(event.positions, event.deliveries):
            self._sub_idx = position
            self._child_n = 0
            if departed and node_id in departed:
                # Mirrors the sequential loop: a departed receiver gets
                # nothing (and schedules nothing, keeping keys aligned).
                continue
            if data is not last_data:
                last_data = data
                try:
                    frame = self._decode(data)
                    if frame.ftype != FT_REQUEST:
                        raise SerializationError(
                            f"unexpected frame type {frame.ftype} on flood"
                        )
                    package = self._request_package(frame)
                except SerializationError:
                    frame = None
                else:
                    rid = package.request_id
                    seq = frame.seq
            if frame is None:
                metrics.frames_rejected += 1
                continue
            node = nodes[node_id]
            session = node.sessions.lookup(rid)
            if session is not None and seq <= session.last_seq:
                metrics.dropped_duplicate += 1
                continue
            self._handle_request_copy(
                episode, node, node_id, from_node, frame, package, session, data
            )

    # -- refresh barrier + re-homing -----------------------------------------

    def _refresh_barrier(self) -> None:
        """Execute one topology refresh at its exact sequential position.

        Every worker has drained to the refresh's ``(time, K)`` and the
        outboxes are empty, so the global state is exactly the
        sequential engine's state when its refresh callback fires.
        """
        refresh_at, refresh_key, interval_ms = self._next_refresh
        self._next_refresh = None
        self._queue.now_ms = refresh_at
        self._current_region = None
        self._current_key = refresh_key
        self._sub_idx = 0
        self._child_n = 0
        # The sequential handler gates re-arming on in-flight episode
        # events; recount them from the queues (SegmentRecordEvents are
        # shard bookkeeping that the sequential engine never schedules).
        self._pending_episode_events = sum(
            1
            for queue in self._region_queues
            for entry in queue
            if type(entry[3]) is not SegmentRecordEvent
        )
        FriendingEngine._on_topology_refresh(self, TopologyRefreshEvent(interval_ms))
        self._rehome()

    def _rehome(self) -> None:
        """Re-assign moved nodes to their new stripes and hand state off.

        A node's per-node state (session rows, limiter history) lives on
        the shared ``Node`` object and needs no copying inline; what must
        move is event ownership: the node's pending calendar entries --
        broadcasts it will send, delivery slices addressed to it, and,
        when the node initiates episodes, the episodes' endpoint events.
        Entries keep their ``(time, K)`` keys, so the global drain order
        is untouched; delivery slices are re-split with their original
        batch slots intact.
        """
        positions = self.mobility.positions()
        node_region = self._node_region
        region_of = self.partition.region_of
        moved: set[str] = set()
        for node, (x, _) in positions.items():
            region = region_of(x)
            if node_region[node] != region:
                node_region[node] = region
                moved.add(node)
        if not moved:
            return
        moved_episodes = {
            episode.index
            for episode in self._episodes
            if episode.spec.initiator_node in moved
        }
        for region in range(self.regions):
            queue = self._region_queues[region]
            if not queue:
                continue
            keep = []
            changed = False
            for entry in queue:
                time_ms, key, seq, event = entry
                cls = type(event)
                if cls is RegionDeliveryEvent:
                    if any(pair[0] in moved for pair in event.deliveries):
                        changed = True
                        parts: dict[int, tuple[list, list]] = {}
                        for position, pair in zip(event.positions, event.deliveries):
                            dest = node_region[pair[0]]
                            part = parts.get(dest)
                            if part is None:
                                part = parts[dest] = ([], [])
                            part[0].append(pair)
                            part[1].append(position)
                        for dest, (pairs, pos) in parts.items():
                            slice_event = RegionDeliveryEvent(
                                event.episode, event.from_node,
                                tuple(pairs), tuple(pos),
                            )
                            if dest == region:
                                keep.append((time_ms, key, seq, slice_event))
                            else:
                                self._outbox.append((dest, time_ms, key, slice_event))
                        continue
                elif cls is BroadcastEvent or cls is FrameEvent:
                    dest = node_region[event.node]
                    if dest != region:
                        changed = True
                        self._outbox.append((dest, time_ms, key, event))
                        continue
                elif event.episode in moved_episodes:
                    dest = node_region[
                        self._episodes[event.episode].spec.initiator_node
                    ]
                    if dest != region:
                        changed = True
                        self._outbox.append((dest, time_ms, key, event))
                        continue
                keep.append(entry)
            if changed:
                heapq.heapify(keep)
                self._region_queues[region] = keep
        self._route_outbox()

    # -- process transport ---------------------------------------------------

    def _run_process(self, specs: list[EpisodeSpec], until_ms: int | None) -> EngineResult:
        """Fork one worker per region and coordinate them over pipes.

        Workers inherit the fully scheduled queues copy-on-write, so no
        network or episode state is pickled at launch; only outbox
        entries and the drain protocol cross the pipes.  Episode state
        mutates on worker-side copies (like ``run_parallel``): results
        must be read from the returned :class:`EpisodeResult`\\ s, and
        the caller's initiator objects are untouched.
        """
        ctx = multiprocessing.get_context("fork")
        first_start = self._setup_run(specs, until_ms)
        self._route_outbox()
        lookahead = self._lookahead()
        regions = self.regions
        queues = self._region_queues
        heads: list[tuple | None] = [
            (queue[0][0], queue[0][1]) if queue else None for queue in queues
        ]
        pipes = []
        workers = []
        try:
            for region in range(regions):
                parent_conn, child_conn = ctx.Pipe()
                worker = ctx.Process(
                    target=_shard_worker_main, args=(self, region, child_conn),
                    daemon=True,
                )
                worker.start()
                child_conn.close()
                pipes.append(parent_conn)
                workers.append(worker)
            completed = first_start
            while True:
                head = min((h for h in heads if h is not None), default=None)
                if head is None:
                    break
                if until_ms is not None and head[0] > until_ms:
                    break
                bound = (head[0] + lookahead, ())
                if until_ms is not None and (until_ms + 1, ()) < bound:
                    bound = (until_ms + 1, ())
                active = [
                    region for region in range(regions)
                    if heads[region] is not None and heads[region] < bound
                ]
                for region in active:
                    pipes[region].send(("drain", bound))
                routed: dict[int, list] = {}
                for region in active:
                    outbox, new_head, last = pipes[region].recv()
                    heads[region] = new_head
                    if last is not None and last > completed:
                        completed = last
                    for dest, time_ms, key, event in outbox:
                        routed.setdefault(dest, []).append((time_ms, key, event))
                for dest, entries in routed.items():
                    entries.sort(key=lambda e: (e[0], e[1]))
                    pipes[dest].send(("push", entries))
                    incoming = (entries[0][0], entries[0][1])
                    if heads[dest] is None or incoming < heads[dest]:
                        heads[dest] = incoming
            for region in range(regions):
                pipes[region].send(("finish",))
            payloads = [pipes[region].recv() for region in range(regions)]
        finally:
            for pipe in pipes:
                pipe.close()
            for worker in workers:
                worker.join(timeout=30)
                if worker.is_alive():  # pragma: no cover -- defensive teardown
                    worker.terminate()
                    worker.join()
        return self._merge_process_results(payloads, first_start, completed)

    def _finish_payload(self, region: int):
        """Worker-side result shipment: metrics always, endpoint if home."""
        payload = []
        node_region = self._node_region
        for episode in self._episodes:
            home = node_region[episode.spec.initiator_node] == region
            payload.append((
                episode.metrics,
                episode.last_event_ms,
                episode.replies if home else None,
                episode.spec.initiator if home else None,
            ))
        return payload

    def _merge_process_results(
        self, payloads, first_start: int, completed: int
    ) -> EngineResult:
        """Coordinator-side merge of per-worker episode copies.

        Every metrics counter increments in exactly one worker (events
        are owned), so summing per-episode metrics across workers in
        region order reconstructs the sequential counters; the reply
        latency list is non-empty only at the home.  Endpoint state
        (initiator, replies) comes from the home worker; the last event
        timestamp is the max across workers (each worker's is the max of
        its own slice).
        """
        episodes = []
        for episode in self._episodes:
            index = episode.index
            metrics = NetworkMetrics()
            last_event = episode.spec.start_ms
            initiator = None
            replies: list = []
            for payload in payloads:
                worker_metrics, worker_last, worker_replies, worker_initiator = (
                    payload[index]
                )
                metrics.merge(worker_metrics)
                if worker_last > last_event:
                    last_event = worker_last
                if worker_initiator is not None:
                    initiator = worker_initiator
                    replies = worker_replies
            episodes.append(EpisodeResult(
                episode=index,
                initiator_node=episode.spec.initiator_node,
                initiator=initiator,
                started_at_ms=episode.spec.start_ms,
                completed_at_ms=last_event,
                metrics=metrics,
                replies=replies,
            ))
        last_episode_event = max(ep.completed_at_ms for ep in episodes)
        return EngineResult(
            episodes=episodes,
            aggregate=self._aggregate(episodes, first_start, last_episode_event),
            completed_at_ms=completed,
            topology_refreshes=0,
        )
