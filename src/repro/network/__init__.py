"""Decentralized multi-hop mobile social network simulator.

The paper's protocols run over ad-hoc WiFi/Bluetooth networks: a request is
broadcast, flooded by relays until it expires or hits its TTL, and matching
users unicast replies back.  This package provides a discrete-event
simulator faithful to that transport -- TTL flooding with duplicate
suppression, per-hop latency, request expiry, per-neighbor rate limiting
(the paper's DoS defence), and byte-level accounting of every transmission.
"""

from repro.network.channel_model import ChannelModel, Delivery, PerfectChannel
from repro.network.events import (
    BroadcastEvent,
    DeliveryEvent,
    EventQueue,
    FrameEvent,
    ReplyHopEvent,
    RetransmitEvent,
    TopologyRefreshEvent,
)
from repro.network.sessions import Session, SessionTable
from repro.network.metrics import AggregateMetrics, NetworkMetrics, percentile
from repro.network.topology import (
    SpatialGrid,
    city_topology,
    complete_topology,
    grid_topology,
    line_topology,
    naive_adjacency,
    proximity_adjacency,
    random_geometric_topology,
)
from repro.network.simulator import AdHocNetwork, FriendingResult, Node, RateLimiter
from repro.network.engine import EngineResult, EpisodeResult, EpisodeSpec, FriendingEngine
from repro.network.mobility import RandomWaypoint, StaticPlacement
from repro.network.scenario import MobileScenario, ScenarioSummary, SearchReport

__all__ = [
    "AdHocNetwork",
    "AggregateMetrics",
    "BroadcastEvent",
    "ChannelModel",
    "Delivery",
    "DeliveryEvent",
    "EngineResult",
    "EpisodeResult",
    "EpisodeSpec",
    "EventQueue",
    "FrameEvent",
    "FriendingEngine",
    "FriendingResult",
    "MobileScenario",
    "NetworkMetrics",
    "Node",
    "PerfectChannel",
    "RandomWaypoint",
    "RateLimiter",
    "ReplyHopEvent",
    "RetransmitEvent",
    "ScenarioSummary",
    "SearchReport",
    "Session",
    "SessionTable",
    "SpatialGrid",
    "StaticPlacement",
    "TopologyRefreshEvent",
    "city_topology",
    "complete_topology",
    "grid_topology",
    "line_topology",
    "naive_adjacency",
    "percentile",
    "proximity_adjacency",
    "random_geometric_topology",
]
