"""Decentralized multi-hop mobile social network simulator.

The paper's protocols run over ad-hoc WiFi/Bluetooth networks: a request is
broadcast, flooded by relays until it expires or hits its TTL, and matching
users unicast replies back.  This package provides a discrete-event
simulator faithful to that transport -- TTL flooding with duplicate
suppression, per-hop latency, request expiry, per-neighbor rate limiting
(the paper's DoS defence), and byte-level accounting of every transmission.
"""

from repro.network.events import EventQueue
from repro.network.metrics import NetworkMetrics
from repro.network.topology import (
    complete_topology,
    grid_topology,
    line_topology,
    random_geometric_topology,
)
from repro.network.simulator import AdHocNetwork, FriendingResult, RateLimiter
from repro.network.mobility import RandomWaypoint
from repro.network.scenario import MobileScenario, ScenarioSummary, SearchReport

__all__ = [
    "AdHocNetwork",
    "EventQueue",
    "FriendingResult",
    "MobileScenario",
    "NetworkMetrics",
    "RandomWaypoint",
    "RateLimiter",
    "ScenarioSummary",
    "SearchReport",
    "complete_topology",
    "grid_topology",
    "line_topology",
    "random_geometric_topology",
]
