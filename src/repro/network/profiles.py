"""Named built-in scenario profiles: topology + mobility + channel + reliability.

A profile is a curated bundle of :class:`~repro.analysis.experiments.ScenarioSpec`
settings with a name -- the ``BUILTIN_SCHEMAS`` / ``load_profile`` registry
idiom -- so a realistic scenario is one flag away instead of nine:

    repro simulate --profile vehicular
    repro profiles list

Profiles hold *defaults*, not mandates: any spec field given explicitly
(CLI flag, JSON spec key, sweep assignment) overrides the profile's value.
Unknown profile names raise a :class:`ValueError` that lists what exists.

The bundles themselves are opinionated sketches of the paper's deployment
settings: ``city`` (dense urban pedestrians on a lossy channel, parity
recovery), ``campus`` (small static quad, near-clean channel, single-shot),
``vehicular`` (fast-churn topology, heavy loss and jitter, patient
escalating re-floods), ``stadium-burst`` (a packed static crowd where
duplication and reordering, not range, are the enemy; selective segment
retransmission) and ``churn-city`` (the lossy city under open-world churn:
nodes join, leave and crash mid-flood through the engine's begin/step
plane).  Every bundle must construct a valid ``ScenarioSpec`` on its own
-- a test pins that.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Any, Mapping

__all__ = [
    "ScenarioProfile",
    "BUILTIN_PROFILES",
    "available_profiles",
    "load_profile",
]


@dataclass(frozen=True)
class ScenarioProfile:
    """One named settings bundle (fields are ``ScenarioSpec`` keys)."""

    name: str
    description: str
    settings: Mapping[str, Any]


def _profile(name: str, description: str, **settings: Any) -> ScenarioProfile:
    return ScenarioProfile(
        name=name, description=description, settings=MappingProxyType(settings)
    )


BUILTIN_PROFILES: dict[str, ScenarioProfile] = {
    p.name: p
    for p in (
        _profile(
            "city",
            "dense urban pedestrians, lossy channel, parity-recovered replies",
            nodes=2000,
            episodes=8,
            protocol=2,
            mobility="random_waypoint",
            radio_radius=0.03,
            arrival_rate_per_s=20.0,
            loss_rate=0.1,
            dup_rate=0.05,
            reorder_rate=0.1,
            corrupt_rate=0.05,
            jitter_ms=3,
            channel_version=2,
            reliability="window_fec",
            retries=0,
        ),
        _profile(
            "campus",
            "small static quad, near-clean channel, single-shot floods",
            nodes=300,
            episodes=4,
            protocol=2,
            mobility="static",
            radio_radius=0.1,
            arrival_rate_per_s=10.0,
            loss_rate=0.02,
            jitter_ms=1,
            channel_version=2,
            reliability="simple",
            retries=0,
        ),
        _profile(
            "vehicular",
            "fast-churn topology, heavy loss and jitter, escalating re-floods",
            nodes=1200,
            episodes=6,
            protocol=2,
            mobility="random_waypoint",
            radio_radius=0.05,
            refresh_interval_ms=200,
            arrival_rate_per_s=30.0,
            loss_rate=0.2,
            dup_rate=0.02,
            reorder_rate=0.15,
            corrupt_rate=0.05,
            jitter_ms=8,
            channel_version=2,
            reliability="stage",
            retries=3,
            retransmit_timeout_ms=400,
        ),
        _profile(
            "stadium-burst",
            "packed static crowd; duplication and reordering dominate, "
            "selective segment retransmission",
            nodes=800,
            episodes=16,
            protocol=3,
            mobility="static",
            radio_radius=0.08,
            arrival_rate_per_s=80.0,
            loss_rate=0.05,
            dup_rate=0.25,
            reorder_rate=0.3,
            jitter_ms=5,
            channel_version=2,
            reliability="window",
            retries=2,
            retransmit_timeout_ms=600,
        ),
        _profile(
            "churn-city",
            "lossy city under open-world churn: arrivals, departures and "
            "crashes mid-flood, parity-recovered replies",
            nodes=1500,
            episodes=8,
            protocol=2,
            mobility="static",
            radio_radius=0.035,
            arrival_rate_per_s=20.0,
            loss_rate=0.1,
            dup_rate=0.05,
            reorder_rate=0.1,
            corrupt_rate=0.05,
            jitter_ms=3,
            channel_version=2,
            reliability="window_fec",
            retries=0,
            churn_rate=4.0,
            churn_crash_rate=0.5,
        ),
    )
}


def available_profiles() -> tuple[str, ...]:
    """All built-in profile names."""
    return tuple(BUILTIN_PROFILES)


def load_profile(name: str) -> ScenarioProfile:
    """Look up one built-in profile by name; unknown names list what exists."""
    try:
        return BUILTIN_PROFILES[name]
    except KeyError:
        known = ", ".join(BUILTIN_PROFILES)
        raise ValueError(f"unknown scenario profile {name!r}; available: {known}") from None
