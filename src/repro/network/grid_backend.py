"""Pluggable cell-assignment backends for the spatial grid rebucket path.

A mid-run mobility refresh re-buckets **only the nodes that moved**
(:meth:`repro.network.topology.SpatialGrid.move_many`), and the first
thing that loop does per node is the cell map
``(floor(x / cell_size), floor(y / cell_size))``.  At metro scale a
refresh can move tens of thousands of nodes at once, so the cell map is
worth batching: this module provides the computation behind a seam with
the same registry idiom as :mod:`repro.network.channel_backend`
(``available`` / ``get`` / ``set`` / ``use`` / ``current`` plus
:func:`select_grid_backend` for callers that want the recorded fallback
instead of a hard error).

``pure`` (default)
    One list comprehension over ``math.floor``: exactly the scalar
    expression :meth:`SpatialGrid._cell_of` uses, so the seam is a
    no-op refactor for environments without numpy.

``numpy`` (optional)
    ``np.floor`` over float64 lanes.  IEEE-754 double division and
    floor are bit-identical to CPython's ``x / cs`` and
    ``math.floor``, so the two backends can never disagree on a cell —
    pinned by the equivalence property in
    ``tests/network/test_grid_backend.py``.  When numpy is missing the
    module records why (:func:`numpy_unavailable_reason`) and
    :func:`select_grid_backend` falls back to ``pure`` with that
    reason, so tier-1 environments never require numpy.

Backends return cells in input order; nothing here touches grid
buckets, so the insertion-order determinism contract of
:class:`~repro.network.topology.SpatialGrid` is untouched by backend
choice.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from contextlib import contextmanager

__all__ = [
    "GridBackend",
    "NumpyGridBackend",
    "PureGridBackend",
    "available_grid_backends",
    "current_grid_backend",
    "get_grid_backend",
    "numpy_unavailable_reason",
    "select_grid_backend",
    "set_grid_backend",
    "use_grid_backend",
]

DEFAULT_GRID_BACKEND = "pure"

try:
    import numpy as _np

    _NUMPY_ERROR: str | None = None
except ImportError as exc:  # pragma: no cover -- the numpy-free CI job
    _np = None
    _NUMPY_ERROR = f"{type(exc).__name__}: {exc}"


class GridBackend:
    """Interface every cell-assignment backend implements.

    ``assign_cells`` maps coordinate pairs to integer grid cells
    ``(floor(x / cell_size), floor(y / cell_size))``, in input order.
    Backends are stateless, so one instance can be shared freely.
    """

    name: str = "abstract"

    def assign_cells(
        self, coords: Sequence[tuple[float, float]], cell_size: float
    ) -> list[tuple[int, int]]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover -- debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class PureGridBackend(GridBackend):
    """Scalar ``math.floor`` loop: the reference cell map."""

    name = "pure"

    def assign_cells(
        self, coords: Sequence[tuple[float, float]], cell_size: float
    ) -> list[tuple[int, int]]:
        floor = math.floor
        return [
            (int(floor(x / cell_size)), int(floor(y / cell_size)))
            for x, y in coords
        ]


class NumpyGridBackend(GridBackend):
    """``np.floor`` over float64 lanes; bit-identical to ``pure``.

    Division and floor on IEEE-754 doubles are exact operations of the
    same rounding mode in both CPython and numpy, so every lane lands in
    the same cell the scalar loop would pick.
    """

    name = "numpy"

    def assign_cells(
        self, coords: Sequence[tuple[float, float]], cell_size: float
    ) -> list[tuple[int, int]]:
        np = _np
        if not coords:
            return []
        arr = np.asarray(coords, dtype=np.float64)
        cells = np.floor(arr / cell_size).astype(np.int64)
        return list(zip(cells[:, 0].tolist(), cells[:, 1].tolist()))


# -- registry ---------------------------------------------------------------

_BACKENDS: dict[str, GridBackend] = {PureGridBackend.name: PureGridBackend()}
if _np is not None:
    _BACKENDS[NumpyGridBackend.name] = NumpyGridBackend()
_current: GridBackend = _BACKENDS[DEFAULT_GRID_BACKEND]


def available_grid_backends() -> tuple[str, ...]:
    """Names of the registered grid backends (stable order)."""
    return tuple(sorted(_BACKENDS))


def numpy_unavailable_reason() -> str | None:
    """Why the ``numpy`` backend is absent, or ``None`` when registered."""
    return None if "numpy" in _BACKENDS else _NUMPY_ERROR


def get_grid_backend(name: str) -> GridBackend:
    """Look up a backend by name; raises ``ValueError`` on unknown names."""
    try:
        return _BACKENDS[name]
    except KeyError:
        reason = numpy_unavailable_reason()
        hint = f" (numpy backend unavailable: {reason})" if name == "numpy" and reason else ""
        raise ValueError(
            f"unknown grid backend {name!r}; "
            f"available: {', '.join(available_grid_backends())}{hint}"
        ) from None


def select_grid_backend(name: str) -> tuple[GridBackend, str | None]:
    """Resolve *name*, falling back to ``pure`` with a recorded reason.

    Returns ``(backend, None)`` on an exact hit; a request for the
    optional ``numpy`` backend in a numpy-free environment returns the
    ``pure`` backend plus the reason string, so tooling can persist the
    fallback instead of failing.  Genuinely unknown names still raise.
    """
    if name == "numpy" and "numpy" not in _BACKENDS:
        reason = numpy_unavailable_reason() or "numpy import failed"
        return (
            _BACKENDS[DEFAULT_GRID_BACKEND],
            f"numpy grid backend unavailable ({reason}); using pure",
        )
    return get_grid_backend(name), None


def current_grid_backend() -> GridBackend:
    """The backend batch cell assignment currently routes through."""
    return _current


def set_grid_backend(name_or_backend: str | GridBackend) -> GridBackend:
    """Select the process-wide grid backend; returns the previous one."""
    global _current
    previous = _current
    if isinstance(name_or_backend, GridBackend):
        _current = name_or_backend
    else:
        _current = get_grid_backend(name_or_backend)
    return previous


@contextmanager
def use_grid_backend(name_or_backend: str | GridBackend):
    """Temporarily select a grid backend (benchmarks, A/B tests)."""
    previous = set_grid_backend(name_or_backend)
    try:
        yield _current
    finally:
        set_grid_backend(previous)
