"""Pluggable fate-stream backends for the v2 channel plane.

:class:`~repro.network.channel_model.ChannelModel` version 2 derives every
per-link fate (drop/dup/reorder/corrupt decisions, jitter draws, the
corrupted bit position) from a **counter-mode SHA-256 keystream** instead
of reseeding a scratch Mersenne-Twister per transmission:

- block ``c`` of one link's stream is
  ``SHA-256(prefix || dst32 || c)``, where ``prefix`` is the 76-byte
  ``seed | seq | flow32 | src32`` broadcast prefix, ``dst32`` /
  ``src32`` / ``flow32`` are SHA-256 digests of the node ids / flow id
  (fixed-width, so the 112-byte message layout is static and
  vectorisable) and ``c`` a 32-bit big-endian counter;
- each block is consumed as eight big-endian 32-bit words, in order,
  rolling into block ``c+1`` when exhausted;
- a probability ``p`` decision fires when ``word < round(p * 2**32)``,
  and a uniform draw in ``[0, n)`` rejection-samples the low
  ``(n-1).bit_length()`` bits of successive words.

The word-consumption order per link is fixed by :func:`_link_fate` (the
executable reference): drop, dup, then per delivered copy jitter draw(s),
reorder decision, corrupt decision and bit draw(s) -- draws gated off by a
zero parameter consume nothing.  Both backends implement exactly this
stream, so backend choice can never change a fate:

``pure`` (default)
    :func:`_link_fate` unrolled over :mod:`hashlib` with the broadcast
    prefix absorbed into one copied SHA-256 state: a single short hash
    call per link in the common case.  This is what breaks the v1
    reseed wall, and at flood fan-outs (mean degree ~13) it is also the
    fastest implementation available to CPython.

``numpy`` (optional)
    A from-scratch SHA-256 compression function over ``uint32`` lanes:
    one vectorised pass computes every link's keystream block (the
    shared 64-byte prefix head collapses to one midstate), and the
    decision cascade -- including the jitter/bit rejection loops --
    runs as masked array ops.  Bit-identical to ``pure`` (pinned by
    hypothesis equivalence in ``tests/network/test_channel_backend.py``).
    The constant cost of a vectorised compression (~3k array ops) only
    amortises at fan-outs in the thousands, so it is an opt-in for
    dense-broadcast studies, not the default; when numpy is missing the
    module records why (:func:`numpy_unavailable_reason`) and
    :func:`select_channel_backend` falls back to ``pure`` with that
    reason, so tier-1 environments never require numpy.

The registry API mirrors :mod:`repro.crypto.backend` (``available`` /
``get`` / ``set`` / ``use`` / ``current``), with one addition --
:func:`select_channel_backend` -- for callers that want the recorded
fallback instead of a hard error.
"""

from __future__ import annotations

import hashlib
import struct
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from typing import NamedTuple

__all__ = [
    "ChannelBackend",
    "FateParams",
    "NumpyChannelBackend",
    "PureChannelBackend",
    "available_channel_backends",
    "current_channel_backend",
    "fate_threshold",
    "get_channel_backend",
    "numpy_unavailable_reason",
    "select_channel_backend",
    "set_channel_backend",
    "use_channel_backend",
]

DEFAULT_CHANNEL_BACKEND = "pure"

PREFIX_LEN = 12 + 32 + 32  # struct.pack(">qI", seed, seq) || flow32 || src32

_WORDS = struct.Struct(">8I")
_CTR0 = b"\x00\x00\x00\x00"

try:
    import numpy as _np

    _NUMPY_ERROR: str | None = None
except ImportError as exc:  # pragma: no cover -- the numpy-free CI job
    _np = None
    _NUMPY_ERROR = f"{type(exc).__name__}: {exc}"


def fate_threshold(rate: float) -> int:
    """32-bit keystream-word threshold for a probability-*rate* decision.

    A decision fires when ``word < fate_threshold(rate)``: ``0.0`` maps
    to 0 (never) and ``1.0`` to ``2**32`` (always, like
    ``random() < 1.0`` in the v1 plane).
    """
    return min(1 << 32, round(rate * (1 << 32)))


class FateParams(NamedTuple):
    """Precomputed draw parameters one :class:`ChannelModel` hands backends.

    Thresholds are :func:`fate_threshold` of the corresponding rate; a
    zero threshold gates the decision's word consumption off entirely
    (mirroring v1's ``if rate and rng.random() < rate``).  ``jitter_n``
    is ``jitter_ms + 1`` (the draw is uniform on ``[0, jitter_ms]``;
    ``1`` means no jitter draw) and ``jitter_mask`` keeps the low
    ``jitter_ms.bit_length()`` bits for its rejection loop.
    """

    drop_t: int
    dup_t: int
    reorder_t: int
    corrupt_t: int
    jitter_n: int
    jitter_mask: int
    reorder_delay_ms: int


def _keystream_words(prefix: bytes, dst32: bytes) -> Iterator[int]:
    """Big-endian 32-bit words of one link's counter-mode stream."""
    head = hashlib.sha256(prefix)
    head.update(dst32)
    unpack = _WORDS.unpack
    counter = 0
    while True:
        h = head.copy()
        h.update(counter.to_bytes(4, "big"))
        yield from unpack(h.digest())
        counter += 1


def _link_fate(
    prefix: bytes,
    dst32: bytes,
    params: FateParams,
    frame_bits: int,
    bit_mask: int,
) -> tuple[tuple[int, int], ...]:
    """The reference fate of one link: the v2 word-consumption contract.

    Returns ``()`` for a dropped transmission, else one
    ``(extra_delay_ms, corrupt_bit)`` pair per delivered copy
    (``corrupt_bit`` is ``-1`` for a clean copy).  Every backend must
    reproduce this function word for word; the equivalence tests pin
    both implementations below against it.
    """
    take = _keystream_words(prefix, dst32).__next__
    if take() < params.drop_t:
        return ()
    copies = 2 if take() < params.dup_t else 1
    jitter_n = params.jitter_n
    jitter_mask = params.jitter_mask
    fate = []
    for _ in range(copies):
        extra = 0
        if jitter_n > 1:
            r = take() & jitter_mask
            while r >= jitter_n:
                r = take() & jitter_mask
            extra = r
        if params.reorder_t and take() < params.reorder_t:
            extra += params.reorder_delay_ms
        bit = -1
        if params.corrupt_t and take() < params.corrupt_t:
            bit = take() & bit_mask
            while bit >= frame_bits:
                bit = take() & bit_mask
        fate.append((extra, bit))
    return tuple(fate)


class ChannelBackend:
    """Interface every channel-fate backend implements.

    ``broadcast_fates`` computes one broadcast's per-link fates:
    *prefix* is the :data:`PREFIX_LEN`-byte broadcast prefix
    (``seed | seq | flow32 | src32``) and *dst_digests* the 32-byte
    destination-id digests, in delivery order.  *frame_bits* bounds the
    corrupted-bit draw (``max(1, 8 * frame length)``).  Backends are
    stateless, so one instance can be shared freely.
    """

    name: str = "abstract"

    def broadcast_fates(
        self,
        prefix: bytes,
        dst_digests: Sequence[bytes],
        params: FateParams,
        frame_bits: int,
    ) -> list[tuple[tuple[int, int], ...]]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover -- debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class PureChannelBackend(ChannelBackend):
    """:func:`_link_fate` unrolled over hashlib: the default hot path.

    The broadcast prefix is absorbed into one SHA-256 state and copied
    per destination (the same trick the v1 batched path uses), so the
    common lossy-flood fate -- first keystream block covers every draw
    -- costs exactly one short hash call per link.  Block refills
    (heavy configs, rejection-loop spills) recompute from the copied
    prefix state, which the equivalence tests pin against the rolling
    reference stream.
    """

    name = "pure"

    def broadcast_fates(
        self,
        prefix: bytes,
        dst_digests: Sequence[bytes],
        params: FateParams,
        frame_bits: int,
    ) -> list[tuple[tuple[int, int], ...]]:
        unpack = _WORDS.unpack
        prefix_copy = hashlib.sha256(prefix).copy
        (
            drop_t, dup_t, reorder_t, corrupt_t,
            jitter_n, jitter_mask, reorder_delay_ms,
        ) = params
        has_jitter = jitter_n > 1
        bit_mask = (1 << (frame_bits - 1).bit_length()) - 1
        def refill(dst32: bytes, counter: int) -> tuple[int, ...]:
            h = prefix_copy()
            h.update(dst32)
            h.update(counter.to_bytes(4, "big"))
            return unpack(h.digest())

        out: list[tuple[tuple[int, int], ...]] = []
        append = out.append
        for dst32 in dst_digests:
            h = prefix_copy()
            h.update(dst32)
            h.update(_CTR0)
            words = unpack(h.digest())
            if words[0] < drop_t:
                append(())
                continue
            copies = 2 if words[1] < dup_t else 1
            idx = 2
            counter = 0
            fate = []
            for _ in range(copies):
                extra = 0
                if has_jitter:
                    while True:
                        if idx == 8:
                            counter += 1
                            words = refill(dst32, counter)
                            idx = 0
                        r = words[idx] & jitter_mask
                        idx += 1
                        if r < jitter_n:
                            extra = r
                            break
                if reorder_t:
                    if idx == 8:
                        counter += 1
                        words = refill(dst32, counter)
                        idx = 0
                    if words[idx] < reorder_t:
                        extra += reorder_delay_ms
                    idx += 1
                bit = -1
                if corrupt_t:
                    if idx == 8:
                        counter += 1
                        words = refill(dst32, counter)
                        idx = 0
                    hit = words[idx] < corrupt_t
                    idx += 1
                    if hit:
                        while True:
                            if idx == 8:
                                counter += 1
                                words = refill(dst32, counter)
                                idx = 0
                            bit = words[idx] & bit_mask
                            idx += 1
                            if bit < frame_bits:
                                break
                fate.append((extra, bit))
            append(tuple(fate))
        return out


# -- numpy backend -----------------------------------------------------------

if _np is not None:
    _K64 = _np.array(
        [
            0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
            0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
            0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
            0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
            0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
            0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
            0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
            0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
            0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
            0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
            0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
            0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
            0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
            0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
            0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
            0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
        ],
        dtype=_np.uint32,
    )
    _H0_8 = _np.array(
        [
            0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
            0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
        ],
        dtype=_np.uint32,
    )

    def _rotr(x, n: int):
        u = _np.uint32
        return (x >> u(n)) | (x << u(32 - n))

    def _sha_compress(state, blocks):
        """One SHA-256 compression across lanes.

        *state* is ``(8,)`` (shared chaining value) or ``(N, 8)`` (one
        per lane); *blocks* is ``(N, 16)`` big-endian message words as
        native ``uint32``.  Returns ``(N, 8)``.  All arithmetic stays in
        ``uint32`` lanes, wrapping mod 2**32 exactly like the scalar
        reference in :mod:`repro.crypto.sha256`.
        """
        np = _np
        u = np.uint32
        # Lift a shared (8,) state to one row per lane: keeping every
        # operand a true array (never a 0-d numpy scalar) lets the uint32
        # arithmetic wrap silently instead of raising overflow warnings.
        state = np.broadcast_to(state, (blocks.shape[0], 8))
        w = [blocks[:, i] for i in range(16)]
        for i in range(16, 64):
            x = w[i - 15]
            y = w[i - 2]
            s0 = _rotr(x, 7) ^ _rotr(x, 18) ^ (x >> u(3))
            s1 = _rotr(y, 17) ^ _rotr(y, 19) ^ (y >> u(10))
            w.append(w[i - 16] + s0 + w[i - 7] + s1)
        init = [state[:, i] for i in range(8)]
        a, b, c, d, e, f, g, h = init
        for i in range(64):
            s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
            ch = (e & f) ^ (~e & g)
            t1 = h + s1 + ch + _K64[i] + w[i]
            s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
            maj = (a & b) ^ (a & c) ^ (b & c)
            t2 = s0 + maj
            h, g, f, e, d, c, b, a = g, f, e, d + t1, c, b, a, t1 + t2
        final = (a, b, c, d, e, f, g, h)
        return np.stack(
            [init[i] + final[i] for i in range(8)], axis=-1
        ).astype(np.uint32)


class NumpyChannelBackend(ChannelBackend):
    """Whole-broadcast fate computation as ``uint32`` array lanes.

    One lane per destination: the shared 64-byte prefix head collapses
    to a single midstate compression, each keystream block
    (``prefix tail | dst32 | counter`` plus fixed padding) is one
    vectorised compression over all lanes that need it, and the
    decision cascade runs on per-lane word cursors with masked refills
    (rejection loops iterate ``while any lane still rejects``).  The
    per-lane word order is identical to :func:`_link_fate`, which is
    what makes the backends bit-identical.
    """

    name = "numpy"

    def _keystream_blocks(self, mid, tail, dst_rows, counters):
        """Stream block per lane: ``(m, 8)`` words for ``(m, 8)`` digests."""
        np = _np
        blk = np.zeros((dst_rows.shape[0], 16), np.uint32)
        blk[:, 0:3] = tail
        blk[:, 3:11] = dst_rows
        blk[:, 11] = counters
        blk[:, 12] = np.uint32(0x80000000)
        blk[:, 15] = np.uint32((PREFIX_LEN + 32 + 4) * 8)
        return _sha_compress(mid, blk)

    def broadcast_fates(
        self,
        prefix: bytes,
        dst_digests: Sequence[bytes],
        params: FateParams,
        frame_bits: int,
    ) -> list[tuple[tuple[int, int], ...]]:
        np = _np
        if len(prefix) != PREFIX_LEN:
            raise ValueError(
                f"v2 broadcast prefix must be {PREFIX_LEN} bytes, got {len(prefix)}"
            )
        n = len(dst_digests)
        if n == 0:
            return []
        mid = _sha_compress(
            _H0_8,
            np.frombuffer(prefix[:64], dtype=">u4").astype(np.uint32).reshape(1, 16),
        )[0]
        tail = np.frombuffer(prefix[64:], dtype=">u4").astype(np.uint32)
        dst_rows = (
            np.frombuffer(b"".join(dst_digests), dtype=">u4")
            .astype(np.uint32)
            .reshape(n, 8)
        )
        words = self._keystream_blocks(mid, tail, dst_rows, np.zeros(n, np.uint32))
        ptr = np.zeros(n, np.int64)
        counters = np.zeros(n, np.uint32)
        lanes = np.arange(n)

        def take(mask):
            """Next stream word for every lane in *mask* (uint64 values)."""
            need = mask & (ptr >= 8)
            if need.any():
                rows = lanes[need]
                counters[rows] += np.uint32(1)
                words[rows] = self._keystream_blocks(
                    mid, tail, dst_rows[rows], counters[rows]
                )
                ptr[rows] = 0
            w = words[lanes, np.minimum(ptr, 7)]
            ptr[mask] += 1
            return w.astype(np.uint64)

        def rejection_draw(mask, low_mask: int, n_draw: int):
            """Uniform ``[0, n_draw)`` per masked lane: the vectorised loop."""
            keep = np.uint64(low_mask)
            bound = np.uint64(n_draw)
            value = take(mask) & keep
            pending = mask & (value >= bound)
            while pending.any():
                redraw = take(pending) & keep
                value = np.where(pending, redraw, value)
                pending = pending & (redraw >= bound)
            return value

        w = take(np.ones(n, bool))
        alive = w >= np.uint64(params.drop_t)
        w = take(alive)
        n_copies = np.where(alive & (w < np.uint64(params.dup_t)), 2, 1)
        n_copies = np.where(alive, n_copies, 0)

        delays = np.zeros((n, 2), np.int64)
        bits = np.full((n, 2), -1, np.int64)
        for c in (0, 1):
            m = n_copies > c
            if not m.any():
                break
            if params.jitter_n > 1:
                value = rejection_draw(m, params.jitter_mask, params.jitter_n)
                delays[m, c] = value[m].astype(np.int64)
            if params.reorder_t:
                hit = m & (take(m) < np.uint64(params.reorder_t))
                delays[hit, c] += params.reorder_delay_ms
            if params.corrupt_t:
                hit = m & (take(m) < np.uint64(params.corrupt_t))
                if hit.any():
                    bit_mask = (1 << (frame_bits - 1).bit_length()) - 1
                    value = rejection_draw(hit, bit_mask, frame_bits)
                    bits[hit, c] = value[hit].astype(np.int64)

        copy0 = list(zip(delays[:, 0].tolist(), bits[:, 0].tolist()))
        copy1 = list(zip(delays[:, 1].tolist(), bits[:, 1].tolist()))
        out: list[tuple[tuple[int, int], ...]] = []
        append = out.append
        for i, k in enumerate(n_copies.tolist()):
            if k == 0:
                append(())
            elif k == 1:
                append((copy0[i],))
            else:
                append((copy0[i], copy1[i]))
        return out


# -- registry ---------------------------------------------------------------

_BACKENDS: dict[str, ChannelBackend] = {PureChannelBackend.name: PureChannelBackend()}
if _np is not None:
    _BACKENDS[NumpyChannelBackend.name] = NumpyChannelBackend()
_current: ChannelBackend = _BACKENDS[DEFAULT_CHANNEL_BACKEND]


def available_channel_backends() -> tuple[str, ...]:
    """Names of the registered channel backends (stable order)."""
    return tuple(sorted(_BACKENDS))


def numpy_unavailable_reason() -> str | None:
    """Why the ``numpy`` backend is absent, or ``None`` when registered."""
    return None if "numpy" in _BACKENDS else _NUMPY_ERROR


def get_channel_backend(name: str) -> ChannelBackend:
    """Look up a backend by name; raises ``ValueError`` on unknown names."""
    try:
        return _BACKENDS[name]
    except KeyError:
        reason = numpy_unavailable_reason()
        hint = f" (numpy backend unavailable: {reason})" if name == "numpy" and reason else ""
        raise ValueError(
            f"unknown channel backend {name!r}; "
            f"available: {', '.join(available_channel_backends())}{hint}"
        ) from None


def select_channel_backend(name: str) -> tuple[ChannelBackend, str | None]:
    """Resolve *name*, falling back to ``pure`` with a recorded reason.

    Returns ``(backend, None)`` on an exact hit.  When the optional
    ``numpy`` backend is requested but not importable the fallback is
    ``(pure backend, reason string)`` -- callers that surface records
    (benchmarks, the experiment runner) persist the reason instead of
    failing, so a numpy-free environment still runs everything.
    Genuinely unknown names still raise.
    """
    if name == "numpy" and "numpy" not in _BACKENDS:
        reason = numpy_unavailable_reason() or "numpy import failed"
        return (
            _BACKENDS[DEFAULT_CHANNEL_BACKEND],
            f"numpy channel backend unavailable ({reason}); using pure",
        )
    return get_channel_backend(name), None


def current_channel_backend() -> ChannelBackend:
    """The backend v2 fate computation currently routes through."""
    return _current


def set_channel_backend(name_or_backend: str | ChannelBackend) -> ChannelBackend:
    """Select the process-wide channel backend; returns the previous one."""
    global _current
    previous = _current
    if isinstance(name_or_backend, ChannelBackend):
        _current = name_or_backend
    else:
        _current = get_channel_backend(name_or_backend)
    return previous


@contextmanager
def use_channel_backend(name_or_backend: str | ChannelBackend):
    """Temporarily select a channel backend (benchmarks, A/B tests)."""
    previous = set_channel_backend(name_or_backend)
    try:
        yield _current
    finally:
        set_channel_backend(previous)
