"""Network topology generators and the uniform-grid spatial index.

All generators return ``(adjacency, positions)`` where *adjacency* maps a
node id to its neighbour ids and *positions* maps it to 2-D coordinates in
the unit square (used by location-aware experiments).  Coordinates are
unitless fractions of the deployment area's side length; radio range is
expressed in the same unit.

Two construction paths coexist:

- :func:`random_geometric_topology` keeps the historical `networkx`
  random-geometric graph (byte-identical output for a given seed, so
  seeded tests and benchmarks stay stable) but stitches disconnected
  components through a :class:`SpatialGrid` nearest-node search instead
  of the old all-pairs scan.
- :func:`city_topology` is the city-scale path: pure-Python position
  sampling plus a :class:`SpatialGrid` adjacency build, O(n · k) for
  average degree k instead of O(n²), with no `networkx`/`scipy`
  dependency — use it for static 10k+ node graphs that must be
  connected.  (The experiment runner derives its topologies from the
  mobility models' grid-backed snapshots instead, which are *not*
  stitched: a mid-run refresh would undo artificial links, so the runner
  reports fragmentation rather than hiding it.)

:func:`naive_adjacency` is the brute-force reference implementation that
benchmarks and property tests compare the grid against.
"""

from __future__ import annotations

import math
import random
from collections import deque
from collections.abc import Iterable, Mapping, Sequence

from repro.network.grid_backend import current_grid_backend

__all__ = [
    "SpatialGrid",
    "naive_adjacency",
    "proximity_adjacency",
    "random_geometric_topology",
    "city_topology",
    "grid_topology",
    "line_topology",
    "complete_topology",
]

Adjacency = dict[str, list[str]]
Positions = dict[str, tuple[float, float]]


def _node_id(i: int) -> str:
    return f"n{i}"


class SpatialGrid:
    """Uniform-grid spatial index with cell size equal to the radio range.

    Nodes live in hash buckets keyed by integer cell ``(x // r, y // r)``.
    Any node within *radius* of a query point is guaranteed to lie in the
    3×3 cell block around the query's cell, so range queries touch a
    constant number of buckets instead of the whole world, and moving a
    node re-buckets only that node (:meth:`move` is O(1) when the cell is
    unchanged, which is the common case for small mobility steps).

    Determinism: buckets are insertion-ordered dicts, so iteration order —
    and therefore every query result — depends only on the sequence of
    ``insert``/``move`` calls, never on hash randomisation.

    A non-positive *radius* degrades gracefully: only exactly co-located
    nodes are "within range", matching the brute-force definition
    ``dist <= radius``.
    """

    __slots__ = ("radius", "_cell_size", "_cells", "_where", "_pos")

    def __init__(self, radius: float):
        self.radius = radius
        # The 3×3 guarantee only needs cell_size >= radius, so tiny and
        # zero radii get a floored bucket size: cell coordinates stay
        # finite and ring searches stay bounded, while the <= radius
        # distance check still does the real filtering.
        self._cell_size = max(radius, 1e-3)
        self._cells: dict[tuple[int, int], dict[str, None]] = {}
        self._where: dict[str, tuple[int, int]] = {}
        self._pos: dict[str, tuple[float, float]] = {}

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (int(math.floor(x / self._cell_size)), int(math.floor(y / self._cell_size)))

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, node: str) -> bool:
        return node in self._where

    def position(self, node: str) -> tuple[float, float]:
        """The stored coordinates of *node*."""
        return self._pos[node]

    def cell_of(self, node: str) -> tuple[int, int]:
        """The grid cell *node* is currently bucketed in."""
        return self._where[node]

    def insert(self, node: str, x: float, y: float) -> None:
        """Add *node* at ``(x, y)``; a node id can be inserted once."""
        if node in self._where:
            raise ValueError(f"node {node!r} already in the grid (use move)")
        cell = self._cell_of(x, y)
        self._cells.setdefault(cell, {})[node] = None
        self._where[node] = cell
        self._pos[node] = (x, y)

    def move(self, node: str, x: float, y: float) -> tuple[tuple[int, int], tuple[int, int]]:
        """Update *node*'s position, re-bucketing only if its cell changed.

        Returns ``(old_cell, new_cell)`` so callers can compute the set of
        neighbourhoods an incremental refresh must re-examine.
        """
        old = self._where[node]
        self._pos[node] = (x, y)
        new = self._cell_of(x, y)
        if new != old:
            bucket = self._cells[old]
            del bucket[node]
            if not bucket:
                del self._cells[old]
            self._cells.setdefault(new, {})[node] = None
            self._where[node] = new
        return old, new

    def move_many(
        self, moves: Sequence[tuple[str, float, float]]
    ) -> list[tuple[tuple[int, int], tuple[int, int]]]:
        """Batch :meth:`move`: one ``(old_cell, new_cell)`` per input move.

        The cell map for the whole batch runs through the active grid
        backend (:mod:`repro.network.grid_backend`), which vectorises it
        under numpy; re-bucketing then happens node by node **in input
        order**, so bucket insertion order — and therefore every later
        query — is exactly what the equivalent sequence of single
        :meth:`move` calls would produce, whichever backend computed the
        cells.
        """
        cells = current_grid_backend().assign_cells(
            [(x, y) for _, x, y in moves], self._cell_size
        )
        where = self._where
        pos = self._pos
        all_cells = self._cells
        out = []
        for (node, x, y), new in zip(moves, cells):
            old = where[node]
            pos[node] = (x, y)
            if new != old:
                bucket = all_cells[old]
                del bucket[node]
                if not bucket:
                    del all_cells[old]
                all_cells.setdefault(new, {})[node] = None
                where[node] = new
            out.append((old, new))
        return out

    def _block(self, cell: tuple[int, int]) -> Iterable[str]:
        """All nodes bucketed in the 3×3 block around *cell*."""
        cx, cy = cell
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                bucket = self._cells.get((cx + dx, cy + dy))
                if bucket:
                    yield from bucket

    def block_occupants(self, cell: tuple[int, int]) -> set[str]:
        """The 3×3 block contents as a set (incremental-refresh helper)."""
        return set(self._block(cell))

    def query(self, x: float, y: float) -> list[str]:
        """Every node within *radius* of the point ``(x, y)``."""
        out = []
        r = self.radius
        for other in self._block(self._cell_of(x, y)):
            ox, oy = self._pos[other]
            if math.hypot(ox - x, oy - y) <= r:
                out.append(other)
        return out

    def neighbors_within(self, node: str) -> list[str]:
        """Every *other* node within *radius* of *node*'s stored position."""
        x, y = self._pos[node]
        out = []
        r = self.radius
        for other in self._block(self._where[node]):
            if other == node:
                continue
            ox, oy = self._pos[other]
            if math.hypot(ox - x, oy - y) <= r:
                out.append(other)
        return out

    def nearest(self, x: float, y: float) -> tuple[str, float] | None:
        """The exact nearest node to ``(x, y)`` via expanding ring search.

        Scans cell rings outward from the query cell and keeps going one
        extra margin after the first hit, because a node in a farther ring
        can still be closer than one found early.  Returns
        ``(node, distance)`` or ``None`` for an empty grid.
        """
        if not self._where:
            return None
        cx, cy = self._cell_of(x, y)
        best: tuple[str, float] | None = None
        ring = 0
        # Bound the search by the occupied extent so empty space far from
        # every node cannot loop forever.
        occupied = self._cells.keys()
        max_ring = max(
            max(abs(ox - cx), abs(oy - cy)) for ox, oy in occupied
        )
        while ring <= max_ring:
            for ox, oy in self._ring_cells(cx, cy, ring):
                bucket = self._cells.get((ox, oy))
                if not bucket:
                    continue
                for node in bucket:
                    nx_, ny_ = self._pos[node]
                    d = math.hypot(nx_ - x, ny_ - y)
                    if best is None or d < best[1]:
                        best = (node, d)
            if best is not None and ring * self._cell_size > best[1]:
                break  # nothing in a farther ring can beat the current best
            ring += 1
        return best

    @staticmethod
    def _ring_cells(cx: int, cy: int, ring: int) -> Iterable[tuple[int, int]]:
        if ring == 0:
            yield (cx, cy)
            return
        for dx in range(-ring, ring + 1):
            yield (cx + dx, cy - ring)
            yield (cx + dx, cy + ring)
        for dy in range(-ring + 1, ring):
            yield (cx - ring, cy + dy)
            yield (cx + ring, cy + dy)

    def adjacency(self, *, sort_key=None) -> Adjacency:
        """Unit-disk adjacency of every stored node (lists optionally sorted)."""
        out: Adjacency = {}
        for node in self._where:
            neighbours = self.neighbors_within(node)
            if sort_key is not None:
                neighbours.sort(key=sort_key)
            out[node] = neighbours
        return out


def naive_adjacency(positions: Mapping[str, tuple[float, float]], radius: float) -> Adjacency:
    """Brute-force all-pairs unit-disk adjacency (the O(n²) reference).

    Kept as the ground truth the :class:`SpatialGrid` is benchmarked and
    property-tested against; production paths must not call it for large
    populations.  Neighbour lists come out in node-insertion order.
    """
    nodes = list(positions)
    adjacency: Adjacency = {node: [] for node in nodes}
    for i, a in enumerate(nodes):
        ax, ay = positions[a]
        for b in nodes[i + 1:]:
            bx, by = positions[b]
            if math.hypot(ax - bx, ay - by) <= radius:
                adjacency[a].append(b)
                adjacency[b].append(a)
    return adjacency


def proximity_adjacency(
    positions: Mapping[str, tuple[float, float]], radius: float
) -> Adjacency:
    """Grid-indexed unit-disk adjacency; equals :func:`naive_adjacency`.

    Builds a throwaway :class:`SpatialGrid` over *positions* and reads the
    adjacency back with neighbour lists in node-insertion order, so the
    result is list-for-list identical to the brute-force reference while
    costing O(n · k) instead of O(n²).
    """
    grid = SpatialGrid(radius)
    order: dict[str, int] = {}
    for i, (node, (x, y)) in enumerate(positions.items()):
        grid.insert(node, x, y)
        order[node] = i
    return grid.adjacency(sort_key=order.__getitem__)


def _connect_components(
    adjacency: Adjacency, positions: Mapping[str, tuple[float, float]], radius: float
) -> None:
    """Stitch every smaller component to the giant one, in place.

    Matches the historical behaviour (the closest node pair between each
    component and the growing main component gains an edge) but finds that
    pair with a :class:`SpatialGrid` expanding-ring nearest-node search
    over the main component instead of an all-pairs scan.
    """
    components = _components(adjacency)
    if len(components) <= 1:
        return
    # Stable size sort: equal-sized components keep BFS discovery order,
    # matching the historical all-pairs implementation choice for choice.
    components.sort(key=len, reverse=True)
    main = components[0]
    main_grid = SpatialGrid(radius)
    for node in sorted(main):
        main_grid.insert(node, *positions[node])
    for component in components[1:]:
        best: tuple[float, str, str] | None = None
        for a in sorted(component):
            found = main_grid.nearest(*positions[a])
            assert found is not None
            b, d = found
            if best is None or d < best[0]:
                best = (d, a, b)
        assert best is not None
        _, a, b = best
        adjacency[a].append(b)
        adjacency[b].append(a)
        for node in sorted(component):
            main_grid.insert(node, *positions[node])


def _components(adjacency: Adjacency) -> list[set[str]]:
    """Connected components by BFS (deterministic order)."""
    seen: set[str] = set()
    components: list[set[str]] = []
    for start in adjacency:
        if start in seen:
            continue
        component = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for other in adjacency[node]:
                if other not in component:
                    component.add(other)
                    frontier.append(other)
        seen |= component
        components.append(component)
    return components


def random_geometric_topology(
    n: int,
    radius: float = 0.2,
    *,
    seed: int | None = None,
    connect: bool = True,
) -> tuple[Adjacency, Positions]:
    """Nodes uniform in the unit square; edges within *radius* (radio range).

    Deterministic for a given *seed* (delegates position sampling and edge
    construction to ``networkx.random_geometric_graph``, so seeded graphs
    are stable across releases of this module).  With ``connect=True``,
    isolated components are stitched to the giant component through their
    closest node pair, so floods can reach everyone (a disconnected MANET
    would trivially zero every metric); the closest pair is found with a
    grid nearest-node search rather than an all-pairs scan.

    For populations beyond a few thousand nodes prefer
    :func:`city_topology`, which skips `networkx` entirely.
    """
    import networkx as nx

    graph = nx.random_geometric_graph(n, radius, seed=seed)
    pos = nx.get_node_attributes(graph, "pos")
    adjacency = {
        _node_id(i): [_node_id(j) for j in graph.neighbors(i)] for i in graph.nodes
    }
    positions = {_node_id(i): tuple(coord) for i, coord in pos.items()}
    if connect and n > 1:
        _connect_components(adjacency, positions, radius)
    return adjacency, positions


def city_topology(
    n: int,
    radius: float,
    *,
    seed: int | None = None,
    connect: bool = True,
) -> tuple[Adjacency, Positions]:
    """City-scale unit-disk topology built entirely on the spatial grid.

    Samples *n* positions uniformly in the unit square with
    ``random.Random(seed)`` (deterministic for a given seed) and derives
    adjacency through a :class:`SpatialGrid`, so construction is O(n · k)
    for average degree k — practical for 10k+ node populations where the
    all-pairs scan is not.  ``connect=True`` stitches stray components to
    the giant one exactly as :func:`random_geometric_topology` does.

    Note the expected degree is ``n · π · radius²``: keep *radius* near
    ``sqrt(target_degree / (π n))`` or dense cities become cliques.
    """
    if n < 0:
        raise ValueError("need a non-negative node count")
    if radius < 0:
        raise ValueError("radio radius must be non-negative")
    rng = random.Random(seed)
    positions: Positions = {
        _node_id(i): (rng.random(), rng.random()) for i in range(n)
    }
    adjacency = proximity_adjacency(positions, radius)
    if connect and n > 1:
        _connect_components(adjacency, positions, radius)
    return adjacency, positions


def grid_topology(width: int, height: int) -> tuple[Adjacency, Positions]:
    """4-connected grid of width × height nodes."""
    adjacency: Adjacency = {}
    positions: Positions = {}
    for y in range(height):
        for x in range(width):
            node = _node_id(y * width + x)
            neighbours = []
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nx_, ny_ = x + dx, y + dy
                if 0 <= nx_ < width and 0 <= ny_ < height:
                    neighbours.append(_node_id(ny_ * width + nx_))
            adjacency[node] = neighbours
            positions[node] = (float(x), float(y))
    return adjacency, positions


def line_topology(n: int) -> tuple[Adjacency, Positions]:
    """A chain -- the worst case for multi-hop relay depth."""
    adjacency = {}
    positions = {}
    for i in range(n):
        neighbours = []
        if i > 0:
            neighbours.append(_node_id(i - 1))
        if i < n - 1:
            neighbours.append(_node_id(i + 1))
        adjacency[_node_id(i)] = neighbours
        positions[_node_id(i)] = (float(i), 0.0)
    return adjacency, positions


def complete_topology(n: int, *, seed: int | None = None) -> tuple[Adjacency, Positions]:
    """Everyone in radio range of everyone (single-hop proximity scenario)."""
    rng = random.Random(seed)
    ids = [_node_id(i) for i in range(n)]
    adjacency = {node: [other for other in ids if other != node] for node in ids}
    positions = {node: (rng.random(), rng.random()) for node in ids}
    return adjacency, positions
