"""Network topology generators.

All generators return ``(adjacency, positions)`` where *adjacency* maps a
node id to its neighbour ids and *positions* maps it to 2-D coordinates
(used by location-aware experiments).  `networkx` supplies the random
geometric graphs that model physical proximity radios.
"""

from __future__ import annotations

import math
import random

import networkx as nx

__all__ = [
    "random_geometric_topology",
    "grid_topology",
    "line_topology",
    "complete_topology",
]

Adjacency = dict[str, list[str]]
Positions = dict[str, tuple[float, float]]


def _node_id(i: int) -> str:
    return f"n{i}"


def random_geometric_topology(
    n: int,
    radius: float = 0.2,
    *,
    seed: int | None = None,
    connect: bool = True,
) -> tuple[Adjacency, Positions]:
    """Nodes uniform in the unit square; edges within *radius* (radio range).

    With ``connect=True``, isolated components are stitched to the giant
    component through their closest node pair, so floods can reach everyone
    (a disconnected MANET would trivially zero every metric).
    """
    graph = nx.random_geometric_graph(n, radius, seed=seed)
    if connect and n > 1:
        components = sorted(nx.connected_components(graph), key=len, reverse=True)
        main = components[0]
        pos = nx.get_node_attributes(graph, "pos")
        for component in components[1:]:
            best = None
            for a in component:
                for b in main:
                    d = math.dist(pos[a], pos[b])
                    if best is None or d < best[0]:
                        best = (d, a, b)
            assert best is not None
            graph.add_edge(best[1], best[2])
            main |= component
    adjacency = {
        _node_id(i): [_node_id(j) for j in graph.neighbors(i)] for i in graph.nodes
    }
    positions = {
        _node_id(i): tuple(coord) for i, coord in nx.get_node_attributes(graph, "pos").items()
    }
    return adjacency, positions


def grid_topology(width: int, height: int) -> tuple[Adjacency, Positions]:
    """4-connected grid of width × height nodes."""
    adjacency: Adjacency = {}
    positions: Positions = {}
    for y in range(height):
        for x in range(width):
            node = _node_id(y * width + x)
            neighbours = []
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nx_, ny_ = x + dx, y + dy
                if 0 <= nx_ < width and 0 <= ny_ < height:
                    neighbours.append(_node_id(ny_ * width + nx_))
            adjacency[node] = neighbours
            positions[node] = (float(x), float(y))
    return adjacency, positions


def line_topology(n: int) -> tuple[Adjacency, Positions]:
    """A chain -- the worst case for multi-hop relay depth."""
    adjacency = {}
    positions = {}
    for i in range(n):
        neighbours = []
        if i > 0:
            neighbours.append(_node_id(i - 1))
        if i < n - 1:
            neighbours.append(_node_id(i + 1))
        adjacency[_node_id(i)] = neighbours
        positions[_node_id(i)] = (float(i), 0.0)
    return adjacency, positions


def complete_topology(n: int, *, seed: int | None = None) -> tuple[Adjacency, Positions]:
    """Everyone in radio range of everyone (single-hop proximity scenario)."""
    rng = random.Random(seed)
    ids = [_node_id(i) for i in range(n)]
    adjacency = {node: [other for other in ids if other != node] for node in ids}
    positions = {node: (rng.random(), rng.random()) for node in ids}
    return adjacency, positions
