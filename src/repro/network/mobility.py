"""Mobility models for the MANET simulator, with grid-indexed snapshots.

The paper's vicinity search treats location as a *dynamic* attribute that
updates as users move (Sec. III-D).  :class:`RandomWaypoint` moves nodes
through the unit square with the classic random-waypoint pattern (pick a
destination, walk at a random speed, pause, repeat); :class:`StaticPlacement`
pins them where they spawned.  Both can re-derive the unit-disk radio
topology at any instant.

Topology snapshots are served from a :class:`~repro.network.topology.SpatialGrid`
(cell size = radio range): the first snapshot buckets everyone, and every
later snapshot re-buckets **only the nodes that moved** and recomputes
neighbour lists only inside the 3×3 cell blocks those moves disturbed.
:meth:`~RandomWaypoint.topology_delta` exposes just the changed rows so a
mid-run refresh (``AdHocNetwork.update_topology``) never rescans the world.

Units: coordinates are fractions of the unit square, speeds are unit-square
widths per second, and all ``dt_s``/pause arguments are simulated seconds.
Every model is deterministic for a given ``seed``: identical call sequences
(steps and snapshots, in order) produce identical positions and adjacency,
independent of hash randomisation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.network.topology import SpatialGrid

__all__ = ["RandomWaypoint", "StaticPlacement", "WaypointState"]


@dataclass
class WaypointState:
    """Per-node mobility state (coordinates in the unit square)."""

    x: float
    y: float
    dest_x: float
    dest_y: float
    speed: float  # unit-square widths per second
    pause_remaining: float = 0.0  # simulated seconds left at this waypoint


class _GridTopologyMixin:
    """Shared grid-backed snapshot machinery for mobility models.

    Subclasses provide ``positions()`` and maintain ``self._moved`` — the
    ids whose coordinates changed since the last snapshot.  The mixin owns
    the spatial grid, the cached adjacency (lists sorted in node order, so
    grid output is list-for-list identical to the brute-force reference)
    and the change tracking behind :meth:`topology_delta`.
    """

    _grid: SpatialGrid | None = None
    _grid_radius: float | None = None
    _adjacency: dict[str, list[str]] | None = None
    _order: dict[str, int] | None = None

    def _init_topology_cache(self) -> None:
        self._moved: set[str] = set()
        self._grid = None
        self._grid_radius = None
        self._adjacency = None
        self._order = None

    def _refresh_topology(self, radius: float) -> set[str]:
        """Bring the cached adjacency up to date; return the changed node ids."""
        positions = self.positions()
        if (
            self._grid is None
            or self._grid_radius != radius
            or self._order is None
            or len(self._grid) != len(positions)
        ):
            # Full (re)build: new model, new radius, or first snapshot.
            grid = SpatialGrid(radius)
            order: dict[str, int] = {}
            for i, (node, (x, y)) in enumerate(positions.items()):
                grid.insert(node, x, y)
                order[node] = i
            self._grid = grid
            self._grid_radius = radius
            self._order = order
            self._adjacency = grid.adjacency(sort_key=order.__getitem__)
            self._moved.clear()
            return set(self._adjacency)

        if not self._moved:
            return set()

        grid = self._grid
        adjacency = self._adjacency
        assert adjacency is not None
        # Re-bucket only the moved nodes, remembering which cell
        # neighbourhoods the moves disturbed (both ends of each move).
        # The batch path routes the cell map through the active grid
        # backend (vectorised under numpy); node order is the original
        # insertion order so bucket contents stay deterministic.
        moves = [
            (node, *positions[node])
            for node in sorted(self._moved, key=self._order.__getitem__)
        ]
        disturbed_cells: set[tuple[int, int]] = set()
        for old_cell, new_cell in grid.move_many(moves):
            disturbed_cells.add(old_cell)
            disturbed_cells.add(new_cell)
        # Any node whose neighbour list can have changed lives in a 3×3
        # block around a disturbed cell (it could have gained or lost a
        # moved node as a neighbour); everyone else keeps their row.
        affected: set[str] = set()
        for cell in disturbed_cells:
            affected |= grid.block_occupants(cell)
        affected |= self._moved
        sort_key = self._order.__getitem__
        changed: set[str] = set()
        for node in affected:
            row = grid.neighbors_within(node)
            row.sort(key=sort_key)
            if row != adjacency[node]:
                adjacency[node] = row
                changed.add(node)
        self._moved.clear()
        return changed

    def snapshot_topology(self, radius: float) -> dict[str, list[str]]:
        """Full unit-disk adjacency at the current instant.

        *radius* is the radio range in unit-square widths.  Equal —
        including neighbour-list order — to the all-pairs reference
        ``repro.network.topology.naive_adjacency(self.positions(), radius)``,
        but computed incrementally from the spatial grid.
        """
        self._refresh_topology(radius)
        assert self._adjacency is not None
        return {node: list(row) for node, row in self._adjacency.items()}

    def topology_delta(self, radius: float) -> dict[str, list[str]]:
        """Only the adjacency rows that changed since the previous snapshot.

        The first refresh on a cold cache (no snapshot taken yet, or a new
        *radius*) returns the full adjacency; after a ``snapshot_topology``
        with no intervening motion it is empty, which is exactly right for
        an engine that built its network from that snapshot.  Feeding the
        result to ``AdHocNetwork.update_topology``
        keeps a mid-run refresh O(moved-neighbourhood) instead of O(n²);
        an empty dict means the topology is unchanged.
        """
        changed = self._refresh_topology(radius)
        assert self._adjacency is not None
        return {node: list(self._adjacency[node]) for node in sorted(changed)}


class RandomWaypoint(_GridTopologyMixin):
    """Random-waypoint mobility over the unit square.

    Parameters
    ----------
    node_ids:
        Nodes to move.
    min_speed / max_speed:
        Uniform speed range (unit-square widths per simulated second); min
        must be positive to avoid the well-known speed-decay pathology.
    pause_s:
        Pause duration at each waypoint, in simulated seconds.
    seed:
        Seeds spawn points, waypoints and speeds; runs with equal seeds and
        equal ``step`` sequences are bit-identical.
    """

    def __init__(
        self,
        node_ids: list[str],
        *,
        min_speed: float = 0.01,
        max_speed: float = 0.05,
        pause_s: float = 2.0,
        seed: int | None = None,
    ):
        if not 0 < min_speed <= max_speed:
            raise ValueError("need 0 < min_speed <= max_speed")
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.pause_s = pause_s
        self.rng = random.Random(seed)
        self._states: dict[str, WaypointState] = {}
        self._init_topology_cache()
        for node in node_ids:
            x, y = self.rng.random(), self.rng.random()
            self._states[node] = WaypointState(
                x=x, y=y, dest_x=x, dest_y=y, speed=0.0, pause_remaining=0.0
            )
            self._pick_waypoint(self._states[node])

    def _pick_waypoint(self, state: WaypointState) -> None:
        state.dest_x = self.rng.random()
        state.dest_y = self.rng.random()
        state.speed = self.rng.uniform(self.min_speed, self.max_speed)

    def positions(self) -> dict[str, tuple[float, float]]:
        """Current coordinates of every node (unit-square fractions)."""
        return {node: (s.x, s.y) for node, s in self._states.items()}

    def step(self, dt_s: float) -> None:
        """Advance the model by *dt_s* simulated seconds."""
        if dt_s < 0:
            raise ValueError("time must move forward")
        for node, state in self._states.items():
            before = (state.x, state.y)
            remaining = dt_s
            while remaining > 1e-12:
                if state.pause_remaining > 0:
                    pause = min(state.pause_remaining, remaining)
                    state.pause_remaining -= pause
                    remaining -= pause
                    continue
                dx = state.dest_x - state.x
                dy = state.dest_y - state.y
                distance = math.hypot(dx, dy)
                if distance < 1e-12:
                    state.pause_remaining = self.pause_s
                    self._pick_waypoint(state)
                    continue
                reach_time = distance / state.speed
                travel = min(reach_time, remaining)
                fraction = travel * state.speed / distance
                state.x += dx * fraction
                state.y += dy * fraction
                remaining -= travel
                if travel == reach_time:
                    state.x, state.y = state.dest_x, state.dest_y
            if (state.x, state.y) != before:
                self._moved.add(node)


class StaticPlacement(_GridTopologyMixin):
    """Nodes spawned uniformly in the unit square that never move.

    The degenerate mobility model for experiments isolating protocol and
    load effects from motion.  Exposes the same interface as
    :class:`RandomWaypoint` (``positions`` / ``step`` / ``snapshot_topology``
    / ``topology_delta``); ``step`` only advances time, and every
    ``topology_delta`` after the first is empty.  Deterministic for a
    given *seed*.
    """

    def __init__(self, node_ids: list[str], *, seed: int | None = None):
        rng = random.Random(seed)
        self._positions = {
            node: (rng.random(), rng.random()) for node in node_ids
        }
        self._init_topology_cache()

    def positions(self) -> dict[str, tuple[float, float]]:
        """Fixed coordinates of every node (unit-square fractions)."""
        return dict(self._positions)

    def step(self, dt_s: float) -> None:
        """Advance time; placement is static so nothing moves."""
        if dt_s < 0:
            raise ValueError("time must move forward")
