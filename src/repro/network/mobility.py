"""Random-waypoint mobility for the MANET simulator.

The paper's vicinity search treats location as a *dynamic* attribute that
updates as users move (Sec. III-D).  This model moves nodes through the
unit square with the classic random-waypoint pattern (pick a destination,
walk at a random speed, pause, repeat) and can re-derive the radio
topology and each node's lattice vicinity at any instant.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = ["RandomWaypoint", "WaypointState"]


@dataclass
class WaypointState:
    """Per-node mobility state."""

    x: float
    y: float
    dest_x: float
    dest_y: float
    speed: float  # units per second
    pause_remaining: float = 0.0


class RandomWaypoint:
    """Random-waypoint mobility over the unit square.

    Parameters
    ----------
    node_ids:
        Nodes to move.
    min_speed / max_speed:
        Uniform speed range (unit square widths per second); min must be
        positive to avoid the well-known speed-decay pathology.
    pause_s:
        Pause duration at each waypoint.
    """

    def __init__(
        self,
        node_ids: list[str],
        *,
        min_speed: float = 0.01,
        max_speed: float = 0.05,
        pause_s: float = 2.0,
        seed: int | None = None,
    ):
        if not 0 < min_speed <= max_speed:
            raise ValueError("need 0 < min_speed <= max_speed")
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.pause_s = pause_s
        self.rng = random.Random(seed)
        self._states: dict[str, WaypointState] = {}
        for node in node_ids:
            x, y = self.rng.random(), self.rng.random()
            self._states[node] = WaypointState(
                x=x, y=y, dest_x=x, dest_y=y, speed=0.0, pause_remaining=0.0
            )
            self._pick_waypoint(self._states[node])

    def _pick_waypoint(self, state: WaypointState) -> None:
        state.dest_x = self.rng.random()
        state.dest_y = self.rng.random()
        state.speed = self.rng.uniform(self.min_speed, self.max_speed)

    def positions(self) -> dict[str, tuple[float, float]]:
        """Current coordinates of every node."""
        return {node: (s.x, s.y) for node, s in self._states.items()}

    def step(self, dt_s: float) -> None:
        """Advance the model by *dt_s* seconds."""
        if dt_s < 0:
            raise ValueError("time must move forward")
        for state in self._states.values():
            remaining = dt_s
            while remaining > 1e-12:
                if state.pause_remaining > 0:
                    pause = min(state.pause_remaining, remaining)
                    state.pause_remaining -= pause
                    remaining -= pause
                    continue
                dx = state.dest_x - state.x
                dy = state.dest_y - state.y
                distance = math.hypot(dx, dy)
                if distance < 1e-12:
                    state.pause_remaining = self.pause_s
                    self._pick_waypoint(state)
                    continue
                reach_time = distance / state.speed
                travel = min(reach_time, remaining)
                fraction = travel * state.speed / distance
                state.x += dx * fraction
                state.y += dy * fraction
                remaining -= travel
                if travel == reach_time:
                    state.x, state.y = state.dest_x, state.dest_y

    def snapshot_topology(self, radius: float) -> dict[str, list[str]]:
        """Adjacency under a unit-disk radio model at the current instant."""
        nodes = list(self._states)
        adjacency: dict[str, list[str]] = {node: [] for node in nodes}
        for i, a in enumerate(nodes):
            sa = self._states[a]
            for b in nodes[i + 1 :]:
                sb = self._states[b]
                if math.hypot(sa.x - sb.x, sa.y - sb.y) <= radius:
                    adjacency[a].append(b)
                    adjacency[b].append(a)
        return adjacency
