"""Discrete-event queue and the typed events of a friending episode.

The queue itself is payload-agnostic (time-ordered callbacks); the event
dataclasses below are the vocabulary the multi-episode engine speaks.  Each
carries the episode index it belongs to, so any number of overlapping
episodes can share one queue and one set of nodes.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

__all__ = [
    "EventQueue",
    "BroadcastEvent",
    "ReceiveEvent",
    "ReplyHopEvent",
    "TopologyRefreshEvent",
]


@dataclass(frozen=True)
class BroadcastEvent:
    """Node *node* transmits episode *episode*'s request to all neighbours."""

    episode: int
    node: str
    ttl: int


@dataclass(frozen=True)
class ReceiveEvent:
    """One copy of the request arrives at *node* from *from_node*."""

    episode: int
    node: str
    from_node: str
    ttl: int


@dataclass(frozen=True)
class ReplyHopEvent:
    """A reply travels one hop back towards the episode's initiator.

    ``reply`` is a :class:`repro.core.protocols.Reply`; typed loosely so the
    event vocabulary stays free of protocol-layer imports.
    """

    episode: int
    reply: Any
    via: str
    remaining_hops: int


@dataclass(frozen=True)
class TopologyRefreshEvent:
    """Mid-run topology refresh tick (mobility re-snapshot)."""

    interval_ms: int


class EventQueue:
    """Time-ordered callback queue with a stable tie-break sequence."""

    def __init__(self, start_ms: int = 0):
        self.now_ms = start_ms
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._sequence = 0

    def schedule(self, delay_ms: int, callback: Callable[[], None]) -> None:
        """Run *callback* *delay_ms* after the current simulation time."""
        if delay_ms < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(self._heap, (self.now_ms + delay_ms, self._sequence, callback))
        self._sequence += 1

    def run(self, until_ms: int | None = None) -> int:
        """Drain the queue (optionally up to *until_ms*); returns events run."""
        executed = 0
        while self._heap:
            when, _, callback = self._heap[0]
            if until_ms is not None and when > until_ms:
                break
            heapq.heappop(self._heap)
            self.now_ms = when
            callback()
            executed += 1
        return executed

    def __len__(self) -> int:
        return len(self._heap)
