"""Minimal discrete-event queue driving the network simulator."""

from __future__ import annotations

import heapq
from collections.abc import Callable

__all__ = ["EventQueue"]


class EventQueue:
    """Time-ordered callback queue with a stable tie-break sequence."""

    def __init__(self, start_ms: int = 0):
        self.now_ms = start_ms
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._sequence = 0

    def schedule(self, delay_ms: int, callback: Callable[[], None]) -> None:
        """Run *callback* *delay_ms* after the current simulation time."""
        if delay_ms < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(self._heap, (self.now_ms + delay_ms, self._sequence, callback))
        self._sequence += 1

    def run(self, until_ms: int | None = None) -> int:
        """Drain the queue (optionally up to *until_ms*); returns events run."""
        executed = 0
        while self._heap:
            when, _, callback = self._heap[0]
            if until_ms is not None and when > until_ms:
                break
            heapq.heappop(self._heap)
            self.now_ms = when
            callback()
            executed += 1
        return executed

    def __len__(self) -> int:
        return len(self._heap)
