"""Discrete-event queue and the typed events of a friending episode.

The queue itself is payload-agnostic (time-ordered callbacks); the event
dataclasses below are the vocabulary the multi-episode engine speaks.  The
unit the events carry is a **datagram** -- the encoded frame bytes that
would be on the air -- so everything a receiving node learns, it learns by
decoding bytes.  Each event also carries the episode index it belongs to;
that index is engine bookkeeping (metrics attribution), never protocol
state: any number of overlapping episodes can share one queue and one set
of nodes, and the protocol handling derives everything from the frame.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

__all__ = [
    "EventQueue",
    "BroadcastEvent",
    "FrameEvent",
    "ReplyHopEvent",
    "RetransmitEvent",
    "TopologyRefreshEvent",
]


@dataclass(frozen=True)
class BroadcastEvent:
    """Node *node* transmits episode *episode*'s request frame to all neighbours.

    ``frame`` is the encoded request datagram; its envelope TTL is the
    remaining hop budget and its envelope seq the retransmission wave.
    (In the engine's object-passing baseline mode it is an un-serialized
    :class:`~repro.core.wire.Frame`, hence the loose type.)
    """

    episode: int
    node: str
    frame: Any


@dataclass(frozen=True)
class FrameEvent:
    """One datagram copy arrives at *node* from *from_node*.

    ``data`` is exactly what the channel delivered -- possibly corrupted
    bytes that will fail the envelope checksum.
    """

    episode: int
    node: str
    from_node: str
    data: Any


@dataclass(frozen=True)
class ReplyHopEvent:
    """A reply frame travels one hop back towards the episode's initiator.

    ``frame`` is the encoded reply datagram; ``remaining_hops`` counts down
    to endpoint delivery.  ``n_elements`` and ``frame_len`` ride along for
    the byte accounting at relay hops (the paper's cost model counts
    payload bytes; the frame counters count datagram bytes), and ``flow``
    is the channel-model flow id derived once at reply creation.  ``copy``
    is the lineage index of this physical copy (link-layer duplication
    forks it), folded into the channel seq so sibling copies draw
    independent fates at subsequent hops.
    """

    episode: int
    frame: Any
    via: str
    remaining_hops: int
    n_elements: int
    frame_len: int
    flow: bytes
    copy: int = 0


@dataclass(frozen=True)
class RetransmitEvent:
    """Initiator-side retransmission timer for an unanswered request."""

    episode: int
    attempt: int


@dataclass(frozen=True)
class TopologyRefreshEvent:
    """Mid-run topology refresh tick (mobility re-snapshot)."""

    interval_ms: int


class EventQueue:
    """Time-ordered callback queue with a stable tie-break sequence."""

    def __init__(self, start_ms: int = 0):
        self.now_ms = start_ms
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._sequence = 0

    def schedule(self, delay_ms: int, callback: Callable[[], None]) -> None:
        """Run *callback* *delay_ms* after the current simulation time."""
        if delay_ms < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(self._heap, (self.now_ms + delay_ms, self._sequence, callback))
        self._sequence += 1

    def run(self, until_ms: int | None = None) -> int:
        """Drain the queue (optionally up to *until_ms*); returns events run."""
        executed = 0
        while self._heap:
            when, _, callback = self._heap[0]
            if until_ms is not None and when > until_ms:
                break
            heapq.heappop(self._heap)
            self.now_ms = when
            callback()
            executed += 1
        return executed

    def __len__(self) -> int:
        return len(self._heap)
