"""Discrete-event queue and the typed events of a friending episode.

The queue itself is payload-agnostic (time-ordered callbacks); the event
dataclasses below are the vocabulary the multi-episode engine speaks.  The
unit the events carry is a **datagram** -- the encoded frame bytes that
would be on the air -- so everything a receiving node learns, it learns by
decoding bytes.  Each event also carries the episode index it belongs to;
that index is engine bookkeeping (metrics attribution), never protocol
state: any number of overlapping episodes can share one queue and one set
of nodes, and the protocol handling derives everything from the frame.

The queue is a **calendar queue** (an ms-granularity ring of deques with a
sorted overflow tier), the classic discrete-event-simulator structure:
near-future events cost O(1) deque appends/pops instead of O(log n) heap
sifts, which matters when a city-scale flood schedules hundreds of
thousands of deliveries.  The drain order is exactly the (time, sequence)
total order of the old binary-heap queue -- :class:`_HeapQueue` keeps that
reference implementation alive for the equivalence property test
(``tests/network/test_events.py``).
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

__all__ = [
    "EventQueue",
    "BroadcastEvent",
    "FrameEvent",
    "DeliveryEvent",
    "ReplyHopEvent",
    "RetransmitEvent",
    "SegmentFlushEvent",
    "SegmentRecordEvent",
    "TopologyRefreshEvent",
]


@dataclass(frozen=True, slots=True)
class BroadcastEvent:
    """Node *node* transmits episode *episode*'s request frame to all neighbours.

    ``frame`` is the encoded request datagram; its envelope TTL is the
    remaining hop budget and its envelope seq the retransmission wave.
    (In the engine's object-passing baseline mode it is an un-serialized
    :class:`~repro.core.wire.Frame`, hence the loose type.)
    """

    episode: int
    node: str
    frame: Any


@dataclass(frozen=True, slots=True)
class FrameEvent:
    """One datagram copy arrives at *node* from *from_node*.

    ``data`` is exactly what the channel delivered -- possibly corrupted
    bytes that will fail the envelope checksum.  The engine's flood fast
    path batches same-instant copies into a :class:`DeliveryEvent`; this
    single-copy event remains the unit type that path expands to, and the
    engine still accepts it (external tooling may schedule one directly).
    """

    episode: int
    node: str
    from_node: str
    data: Any


@dataclass(frozen=True, slots=True)
class DeliveryEvent:
    """All copies of one broadcast arriving at the same instant.

    ``deliveries`` is a tuple of ``(receiver, data)`` pairs in the exact
    per-link scheduling order the channel produced them, so handling them
    in sequence inside one event reproduces the old one-event-per-copy
    execution order while paying one queue entry per time bucket instead
    of one per copy.  ``data`` is shared between entries whenever the
    channel delivered the frame untouched (corruption forks a private
    copy), which is what lets the engine decode each distinct datagram
    once per event.
    """

    episode: int
    from_node: str
    deliveries: tuple[tuple[str, Any], ...]


@dataclass(frozen=True, slots=True)
class ReplyHopEvent:
    """A reply frame travels one hop back towards the episode's initiator.

    ``frame`` is the encoded reply datagram; ``remaining_hops`` counts down
    to endpoint delivery.  ``n_elements`` and ``frame_len`` ride along for
    the byte accounting at relay hops (the paper's cost model counts
    payload bytes; the frame counters count datagram bytes), and ``flow``
    is the channel-model flow id derived once at reply creation.  ``copy``
    is the lineage index of this physical copy (link-layer duplication
    forks it), folded into the channel seq so sibling copies draw
    independent fates at subsequent hops.
    """

    episode: int
    frame: Any
    via: str
    remaining_hops: int
    n_elements: int
    frame_len: int
    flow: bytes
    copy: int = 0


@dataclass(frozen=True, slots=True)
class RetransmitEvent:
    """Initiator-side retransmission timer for an unanswered request."""

    episode: int
    attempt: int


@dataclass(frozen=True, slots=True)
class SegmentFlushEvent:
    """Reply-window close for one episode under a segmented reliability mode.

    Fires once per episode at ``start_ms + reply_window_ms``: responders
    whose segmented replies are still incomplete have whatever elements
    did arrive (plus anything parity can reconstruct) delivered as a
    partial reply -- the initiator's acceptance window is closing, so a
    partial set now beats a complete set never.
    """

    episode: int


@dataclass(frozen=True, slots=True)
class SegmentRecordEvent:
    """Ship a responder's sender-side segment record to the episode endpoint.

    Under selective-retransmission reliability the engine records the
    encoded data-segment frames a responder sent (``_Episode.seg_sent``)
    so a later wave can re-send exactly the missing ones.  The sequential
    engine writes that record in place; a region-sharded run executes the
    responder and the initiator endpoint on different workers, so the
    record travels as an explicit event instead -- scheduled at the same
    processing latency as the segments themselves, which is provably
    before any reader: a selective wave only consults the record for
    responders that already appear in ``seg_rx``, and the first segment
    cannot arrive before one extra hop of latency.
    """

    episode: int
    responder: str
    via: str
    hops: int
    record: "dict[int, bytes]"


@dataclass(frozen=True, slots=True)
class TopologyRefreshEvent:
    """Mid-run topology refresh tick (mobility re-snapshot)."""

    interval_ms: int


# Sentinel distinguishing "no argument" from "call with None": the queue
# stores ``(callback, arg)`` pairs directly so hot schedulers (the engine)
# never allocate a closure/partial per event.
_NO_ARG = object()


class _HeapQueue:
    """Binary-heap reference queue: the original (time, seq) total order.

    Kept as the executable specification of the drain order the calendar
    :class:`EventQueue` must reproduce; the Hypothesis property test in
    ``tests/network/test_events.py`` drives both with the same schedule
    interleavings (overflow-tier spills, ``until_ms`` cutoffs included)
    and asserts identical drains.
    """

    def __init__(self, start_ms: int = 0):
        self.now_ms = start_ms
        self._heap: list[tuple[int, int, Callable, Any]] = []
        self._sequence = 0

    def schedule(self, delay_ms: int, callback: Callable, arg: Any = _NO_ARG) -> None:
        """Run ``callback()`` -- or ``callback(arg)`` -- *delay_ms* from now."""
        if delay_ms < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(
            self._heap, (self.now_ms + delay_ms, self._sequence, callback, arg)
        )
        self._sequence += 1

    def run(self, until_ms: int | None = None) -> int:
        """Drain the queue (optionally up to *until_ms*); returns events run."""
        executed = 0
        while self._heap:
            when, _, callback, arg = self._heap[0]
            if until_ms is not None and when > until_ms:
                break
            heapq.heappop(self._heap)
            self.now_ms = when
            if arg is _NO_ARG:
                callback()
            else:
                callback(arg)
            executed += 1
        return executed

    def __len__(self) -> int:
        return len(self._heap)


# Ring span in milliseconds.  Wide enough that per-hop latencies, jitter
# and processing delays (a few ms) always land in the ring; far-future
# entries (retransmission timers at +1000 ms, staggered episode starts)
# take the overflow heap and migrate into the ring as the clock
# approaches.  A power of two keeps the modulo cheap.
_DEFAULT_RING_MS = 512


class EventQueue:
    """Time-ordered callback queue with a stable tie-break sequence.

    Calendar-queue implementation: a ring of per-millisecond deques over
    the next :data:`_DEFAULT_RING_MS` simulated milliseconds plus a heap
    for events beyond that horizon.  Scheduling into the ring and popping
    the next event are O(1); the total drain order is identical to
    :class:`_HeapQueue`'s (time, then schedule sequence).

    Invariants the implementation maintains:

    - every ring entry's fire time is in ``[cursor, cursor + ring_ms)``,
      so one bucket never mixes two distinct fire times;
    - overflow entries migrate into the ring (in (time, seq) heap order)
      the moment the advancing cursor brings them inside the horizon,
      and always before any same-time entry can be scheduled directly --
      so per-bucket FIFO order is schedule order.
    """

    def __init__(self, start_ms: int = 0, *, ring_ms: int = _DEFAULT_RING_MS):
        if ring_ms < 1:
            raise ValueError("ring_ms must be >= 1")
        self.now_ms = start_ms
        self._ring_ms = ring_ms
        self._ring: list[deque[tuple[int, int, Callable, Any]]] = [
            deque() for _ in range(ring_ms)
        ]
        self._cursor = start_ms  # earliest time that may still hold ring entries
        self._ring_count = 0
        self._overflow: list[tuple[int, int, Callable, Any]] = []
        self._sequence = 0
        self._count = 0

    def schedule(self, delay_ms: int, callback: Callable, arg: Any = _NO_ARG) -> None:
        """Run ``callback()`` -- or ``callback(arg)`` -- *delay_ms* from now."""
        if delay_ms < 0:
            raise ValueError("delay must be non-negative")
        when = self.now_ms + delay_ms
        if when < self._cursor:
            self._pull_back(when)
        if when - self._cursor < self._ring_ms:
            self._ring[when % self._ring_ms].append(
                (when, self._sequence, callback, arg)
            )
            self._ring_count += 1
        else:
            heapq.heappush(self._overflow, (when, self._sequence, callback, arg))
        self._sequence += 1
        self._count += 1

    def _pull_back(self, when: int) -> None:
        """Rewind the cursor to *when* (an ``until_ms`` cutoff left it ahead).

        Rare path: only a ``run(until_ms)`` break can leave the cursor
        beyond ``now_ms``, and only a subsequent schedule into that gap
        lands here.  Rewinding shrinks the ring horizon, so any ring entry
        the new horizon no longer covers is demoted to the overflow heap
        (its original sequence number travels with it, preserving the
        total order).
        """
        self._cursor = when
        horizon = when + self._ring_ms
        if self._ring_count:
            for bucket in self._ring:
                if bucket and bucket[0][0] >= horizon:
                    while bucket:
                        heapq.heappush(self._overflow, bucket.popleft())
                        self._ring_count -= 1

    def _migrate(self) -> None:
        """Move overflow entries the horizon now covers into the ring."""
        overflow = self._overflow
        horizon = self._cursor + self._ring_ms
        while overflow and overflow[0][0] < horizon:
            entry = heapq.heappop(overflow)
            self._ring[entry[0] % self._ring_ms].append(entry)
            self._ring_count += 1

    def run(self, until_ms: int | None = None) -> int:
        """Drain the queue (optionally up to *until_ms*); returns events run."""
        executed = 0
        ring = self._ring
        ring_ms = self._ring_ms
        while self._count:
            if self._ring_count == 0:
                # Ring dry: jump the cursor straight to the overflow head.
                when = self._overflow[0][0]
                if until_ms is not None and when > until_ms:
                    break
                self._cursor = when
                self._migrate()
            bucket = ring[self._cursor % ring_ms]
            while not bucket:
                self._cursor += 1
                self._migrate()
                bucket = ring[self._cursor % ring_ms]
            when = bucket[0][0]
            if until_ms is not None and when > until_ms:
                break
            _, _, callback, arg = bucket.popleft()
            self._ring_count -= 1
            self._count -= 1
            self.now_ms = when
            if arg is _NO_ARG:
                callback()
            else:
                callback(arg)
            executed += 1
        return executed

    def __len__(self) -> int:
        return self._count
