"""Named, registry-resolved fault campaigns for the open-world plane.

A *fault campaign* is a declarative list of timed actions injected into a
run by the :class:`~repro.network.churn.ChurnRunner`: initiator crashes
mid-flood (session state lost), population blackouts with staged
recovery, session-table pressure bursts, and region-worker
kill-and-restart in the :class:`~repro.network.regions.
RegionShardedEngine`.  Campaigns are resolved by name exactly like
scenario profiles and reliability modes (the Snippet-registry idiom):
unknown names raise a ``ValueError`` listing the available choices, so a
typo in a spec or on the CLI fails loudly with the menu in hand.

Action times are *fractions of the run horizon* (``at`` in ``[0, 1]``),
so one campaign applies meaningfully to a 10-second scenario and a
10-hour soak alike; :func:`compile_campaign` turns them into absolute
milliseconds for a concrete ``(start, horizon)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType

__all__ = [
    "FAULT_KINDS",
    "FaultAction",
    "FaultCampaign",
    "apply_fault_action",
    "available_fault_plans",
    "compile_campaign",
    "load_fault_plan",
]

FAULT_KINDS = ("crash_initiator", "crash_fraction", "session_pressure", "region_restart")


@dataclass(frozen=True)
class FaultAction:
    """One timed action of a campaign.

    ``at`` is the fraction of the run horizon the action fires at.
    ``crash_initiator`` crashes the initiator node of live episode
    ``episode`` (a no-op if that episode already settled);
    ``crash_fraction`` crashes ``fraction`` of the live population
    (every ``round(1/fraction)``-th node of the sorted live set), waking
    them at ``wake_after`` (fraction of horizon, None = never);
    ``session_pressure`` opens ``count`` short-lived synthetic sessions
    (TTL ``ttl_ms``) on every live node, squeezing real floods against
    the bounded tables; ``region_restart`` kills and recovers every
    region worker's queue (a sequential engine has none: no-op).
    """

    at: float
    kind: str
    episode: int = 0
    fraction: float = 0.0
    wake_after: float | None = None
    count: int = 0
    ttl_ms: int = 0

    def __post_init__(self):
        if not 0.0 <= self.at <= 1.0:
            raise ValueError(f"at must be a horizon fraction in [0, 1], got {self.at!r}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if self.kind == "crash_fraction" and not 0.0 < self.fraction <= 1.0:
            raise ValueError("crash_fraction needs fraction in (0, 1]")
        if self.wake_after is not None and not self.at <= self.wake_after <= 1.0:
            raise ValueError("wake_after must be in [at, 1]")
        if self.kind == "session_pressure" and (self.count < 1 or self.ttl_ms < 1):
            raise ValueError("session_pressure needs count >= 1 and ttl_ms >= 1")


@dataclass(frozen=True)
class FaultCampaign:
    """A named, ordered sequence of :class:`FaultAction`\\ s."""

    name: str
    description: str
    actions: tuple[FaultAction, ...]

    def __post_init__(self):
        if any(b.at < a.at for a, b in zip(self.actions, self.actions[1:])):
            raise ValueError(f"campaign {self.name!r} actions must be time-ordered")


FAULT_PLANS: MappingProxyType = MappingProxyType({
    "initiator-crash": FaultCampaign(
        "initiator-crash",
        "crash episode 0's initiator mid-flood; its session state is lost and "
        "in-flight replies orphan",
        (FaultAction(at=0.35, kind="crash_initiator", episode=0),),
    ),
    "blackout": FaultCampaign(
        "blackout",
        "crash 10% of the live population a quarter into the run; survivors "
        "route around the hole, the crashed tenth wakes (state lost) at 60%",
        (FaultAction(at=0.25, kind="crash_fraction", fraction=0.10, wake_after=0.60),),
    ),
    "session-pressure": FaultCampaign(
        "session-pressure",
        "burst 64 short-lived synthetic sessions onto every node's bounded "
        "table early in the run (overflow/eviction pressure on real floods)",
        (FaultAction(at=0.20, kind="session_pressure", count=64, ttl_ms=2_000),),
    ),
    "region-restart": FaultCampaign(
        "region-restart",
        "kill and recover every region worker's calendar queue mid-run; the "
        "genealogy-key rebuild must keep the run byte-identical",
        (FaultAction(at=0.50, kind="region_restart"),),
    ),
})


def available_fault_plans() -> tuple[str, ...]:
    """Registered campaign names, stable order."""
    return tuple(FAULT_PLANS)


def load_fault_plan(name: str | FaultCampaign) -> FaultCampaign:
    """Resolve a campaign by name; unknown names list the choices."""
    if isinstance(name, FaultCampaign):
        return name
    try:
        return FAULT_PLANS[name]
    except KeyError:
        known = ", ".join(available_fault_plans())
        raise ValueError(f"unknown fault plan {name!r}; available: {known}") from None


def compile_campaign(
    campaign: FaultCampaign, start_ms: int, horizon_ms: int
) -> list[tuple[int, FaultAction]]:
    """Pin a campaign's horizon fractions to absolute simulated times."""
    span = max(0, horizon_ms - start_ms)
    return [
        (start_ms + round(action.at * span), action)
        for action in campaign.actions
    ]


def apply_fault_action(runner, action: FaultAction) -> None:
    """Apply one action through a :class:`~repro.network.churn.ChurnRunner`.

    Lives here (not on the runner) so the campaign vocabulary and its
    semantics stay in one module; the runner supplies the live set,
    positions and the engine.
    """
    engine = runner.engine
    now_ms = engine._queue.now_ms

    def _crash(victim: str) -> None:
        runner.live.discard(victim)
        engine.crash_node(victim)
        if action.wake_after is not None:
            span = runner._fault_horizon - runner._fault_start
            wake_at = runner._fault_start + round(action.wake_after * span)
            runner._book(max(wake_at, now_ms + 1), "wake", victim)

    if action.kind == "crash_initiator":
        victim = engine.episode_initiator_node(action.episode)
        if victim is not None and victim in runner.live:
            _crash(victim)
    elif action.kind == "crash_fraction":
        candidates = sorted(runner.live)
        stride = max(1, round(1.0 / action.fraction))
        for victim in candidates[::stride]:
            _crash(victim)
    elif action.kind == "session_pressure":
        import hashlib

        for node_id in sorted(runner.live):
            node = engine.network.nodes[node_id]
            for i in range(action.count):
                rid = hashlib.sha256(
                    b"fault.pressure:" + node_id.encode() + i.to_bytes(4, "big")
                ).digest()[:16]
                node.sessions.open(
                    rid, parent=None, hops=1,
                    expires_ms=now_ms + action.ttl_ms, now_ms=now_ms,
                )
    else:  # region_restart
        for region in range(getattr(engine, "regions", 1)):
            engine.restart_region(region)
