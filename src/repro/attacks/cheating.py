"""Cheating participants (Def. 2) and the verifiability defence (Sec. IV-A3).

A cheater claims to match without owning the attributes.  Because a reply
element only verifies when it was encrypted under the true ``x`` -- which
is sealed under the request profile key -- a cheater can do no better than
guess, and the initiator's ACK check rejects the forgery.
"""

from __future__ import annotations

import os

from repro.core.protocols import ACK, Reply, build_reply_element
from repro.core.request import RequestPackage

__all__ = ["CheatingParticipant"]


class CheatingParticipant:
    """A participant who forges match claims instead of running the protocol."""

    def __init__(self, user_id: str = "mallory"):
        self.user_id = user_id

    def forge_random_reply(self, package: RequestPackage, n_elements: int = 1) -> Reply:
        """Claim a match with random-key elements (no knowledge of x)."""
        elements = tuple(
            build_reply_element(os.urandom(32), os.urandom(32), similarity=255)
            for _ in range(n_elements)
        )
        return Reply(
            request_id=package.request_id,
            responder_id=self.user_id,
            elements=elements,
            sent_at_ms=0,
        )

    def forge_plaintext_guess_reply(self, package: RequestPackage) -> Reply:
        """Claim a match by replaying plausible-looking plaintext bytes.

        Even knowing the public ACK string is useless without ``x``: the
        element must *decrypt* to the ACK under the initiator's ``x``.
        """
        fake_element = ACK + bytes([255]) + os.urandom(32)
        return Reply(
            request_id=package.request_id,
            responder_id=self.user_id,
            elements=(fake_element,),
            sent_at_ms=0,
        )

    def flood_reply(self, package: RequestPackage, n_elements: int = 1024) -> Reply:
        """A dictionary-style oversized acknowledge set.

        The initiator's cardinality threshold (Protocol 2/3 step 3) rejects
        it without opening a single element.
        """
        return self.forge_random_reply(package, n_elements=n_elements)
