"""Dictionary profiling attacks (Def. 1, Sec. IV-A1).

Two dictionary-armed adversaries:

- :class:`DictionaryAttacker` -- a malicious *participant/eavesdropper*
  holding the full attribute dictionary who tries to reconstruct the
  request profile from an observed package.  Against Protocol 1 the sealed
  confirmation string is a decryption oracle, so a small dictionary breaks
  the request (the paper's Table II entry PPL 0).  Against Protocols 2/3
  there is no oracle: every dictionary combination decrypts to *some*
  ``x``, so the attacker ends with an undistinguishable candidate set
  (PPL 3).
- :class:`ProbingInitiator` -- a malicious *initiator* who tests a victim's
  attribute ownership one attribute at a time with crafted single-attribute
  requests; the verified ack tells it the truth.  Protocol 3's φ-entropy
  budget is the defence: the victim refuses to test candidate profiles
  whose disclosure would exceed φ.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.core.attributes import Profile, RequestProfile
from repro.core.matching import unseal_secret
from repro.core.profile_vector import profile_key
from repro.core.protocols import Initiator, Participant
from repro.core.request import RequestPackage
from repro.crypto.hashes import hash_attribute

__all__ = ["DictionaryAttacker", "ProbingInitiator", "RecoveryResult"]


@dataclass
class RecoveryResult:
    """Outcome of a request-recovery attempt."""

    recovered: tuple[str, ...] | None
    guesses: int
    candidate_combinations: int

    @property
    def succeeded(self) -> bool:
        return self.recovered is not None


class DictionaryAttacker:
    """Adversary holding the full attribute dictionary (worst case)."""

    def __init__(self, dictionary: list[str], max_combinations: int = 200_000):
        self.dictionary = list(dictionary)
        self.max_combinations = max_combinations
        self._hashes = {attr: hash_attribute(attr) for attr in self.dictionary}

    def recover_request(self, package: RequestPackage) -> RecoveryResult:
        """Try to reconstruct the request profile from an observed package.

        Buckets the dictionary by remainder, enumerates order-consistent
        combinations and -- when the protocol offers an oracle (Protocol 1
        confirmation) -- tests each candidate key.  Protocols 2/3 yield no
        oracle, so the attack can only report how large the surviving
        candidate set is.
        """
        buckets: list[list[tuple[int, str]]] = []
        for r in package.remainders:
            bucket = [
                (h, attr) for attr, h in self._hashes.items() if h % package.p == r
            ]
            bucket.sort()
            buckets.append(bucket)
        if any(not b for b in buckets):
            # The dictionary does not cover the request: fall back to the
            # fuzzy path (unknown positions) only if a hint exists.
            return RecoveryResult(recovered=None, guesses=0, candidate_combinations=0)

        combinations = 1
        for b in buckets:
            combinations *= len(b)
        guesses = 0
        if package.protocol == 1:
            for combo in product(*buckets):
                values = tuple(h for h, _ in combo)
                if list(values) != sorted(values):
                    continue  # request vectors are sorted
                guesses += 1
                if guesses > self.max_combinations:
                    break
                key = profile_key(values)
                x, _ = unseal_secret(key, 1, package.ciphertext)
                if x is not None:
                    return RecoveryResult(
                        recovered=tuple(attr for _, attr in combo),
                        guesses=guesses,
                        candidate_combinations=combinations,
                    )
        # No oracle (or oracle never fired): the attacker is stuck with the
        # whole combination space.
        return RecoveryResult(
            recovered=None, guesses=guesses, candidate_combinations=combinations
        )


class ProbingInitiator:
    """Malicious initiator probing a victim's attributes one by one."""

    def __init__(self, dictionary: list[str], protocol: int = 2):
        if protocol not in (2, 3):
            raise ValueError("probing targets the no-confirmation protocols (2/3)")
        self.dictionary = list(dictionary)
        self.protocol = protocol

    def probe(self, victim: Participant, *, p: int = 11) -> dict[str, bool]:
        """Learn, per dictionary attribute, whether the victim owns it.

        Sends one exact single-attribute request per dictionary entry and
        checks whether any reply element verifies under the true ``x``.
        Protocol 3 victims with a φ-entropy policy simply stop replying
        once the budget is spent, capping what the probe can learn.
        """
        learned: dict[str, bool] = {}
        for attr in self.dictionary:
            # Dictionary entries are already canonical normalized forms.
            initiator = Initiator(
                RequestProfile.exact([attr], normalized=True), protocol=self.protocol, p=p
            )
            package = initiator.create_request(now_ms=0)
            reply = victim.handle_request(package, now_ms=1)
            owned = False
            if reply is not None:
                owned = initiator.handle_reply(reply, now_ms=2) is not None
            learned[attr] = owned
        return learned

    def leaked_attributes(self, victim_profile: Profile, probe_result: dict[str, bool]) -> set[str]:
        """Which of the victim's true attributes the probe actually exposed."""
        return {
            attr for attr, owned in probe_result.items()
            if owned and attr in victim_profile.as_set()
        }
