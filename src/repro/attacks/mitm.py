"""Man-in-the-middle attack on channel establishment (Sec. IV-A2).

Diffie-Hellman without authentication falls to an active MITM; the
sealed-bottle key exchange does not, because the key material (``x`` and
``y``) is never exposed to anyone lacking the matching attributes.  The
attacker here fully controls the wire and operates on the actual
**frames**: it decodes captured datagrams, tampers or substitutes them,
and re-injects bytes.  Two distinct failure modes are demonstrated:

- bytes mangled *without* re-framing fail the envelope checksum -- the
  codec rejects them before any protocol code runs
  (:meth:`ManInTheMiddle.tamper_frame`);
- a *well-formed* forgery (decode, swap the sealed elements for
  attacker-keyed ones, re-encode) passes the codec but fails the
  protocol's ACK verification, because the attacker cannot encrypt under
  the true ``x`` (:meth:`ManInTheMiddle.substitute_reply`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.channel import SecureChannel
from repro.core.exceptions import SerializationError
from repro.core.matching import unseal_secret
from repro.core.protocols import Reply, build_reply_element
from repro.core.request import RequestPackage
from repro.core.wire import (
    FT_REPLY,
    FT_REQUEST,
    decode_frame,
    decode_payload,
    decode_session_message,
    encode_reply_frame,
    flip_bit,
)
from repro.crypto.authenticated import AuthenticationError

__all__ = ["ManInTheMiddle", "MitmOutcome"]


@dataclass
class MitmOutcome:
    """What the attacker managed to achieve."""

    read_x: bool = False
    read_y: bool = False
    session_messages_read: int = 0
    session_messages_forged: int = 0
    notes: list[str] = field(default_factory=list)


class ManInTheMiddle:
    """Active wire-controlling adversary without the matching attributes."""

    def __init__(self):
        self.observed_packages: list[RequestPackage] = []
        self.observed_replies: list[Reply] = []
        self.outcome = MitmOutcome()

    def intercept_request(self, frame: bytes) -> bytes:
        """Decode (and forward) a captured request frame; try to unseal x.

        The frame is forwarded byte-identical -- a faithful relay gains
        nothing and blocks nothing.
        """
        decoded = decode_frame(frame)
        if decoded.ftype != FT_REQUEST:
            raise SerializationError("expected a request frame")
        package = decode_payload(decoded)
        self.observed_packages.append(package)
        # Best effort: decrypt under a random guess key -- succeeds with
        # probability 2^-256; the point is there is no oracle to do better.
        guess_key = os.urandom(32)
        x, _ = unseal_secret(guess_key, package.protocol, package.ciphertext)
        if x is not None:
            self.outcome.read_x = True
            self.outcome.notes.append("confirmation verified under a guessed key (!)")
        return frame

    def substitute_reply(self, frame: bytes) -> bytes:
        """Decode-then-tamper: re-frame the reply with attacker-keyed elements.

        Classic MITM splice attempt: the forgery is a perfectly valid
        *frame* (fresh envelope, correct checksum), so the codec accepts
        it -- if the initiator accepted one of its elements, the attacker
        would share ``y'`` with it.  The ACK check defeats it because the
        attacker cannot encrypt under the true ``x``.
        """
        decoded = decode_frame(frame)
        if decoded.ftype != FT_REPLY:
            raise SerializationError("expected a reply frame")
        reply = decode_payload(decoded)
        self.observed_replies.append(reply)
        forged = Reply(
            request_id=reply.request_id,
            responder_id=reply.responder_id,
            elements=tuple(
                build_reply_element(os.urandom(32), os.urandom(32), similarity=255)
                for _ in reply.elements
            ),
            sent_at_ms=reply.sent_at_ms,
        )
        return encode_reply_frame(forged, ttl=decoded.ttl, seq=decoded.seq)

    def tamper_frame(self, frame: bytes, bit_index: int = 0) -> bytes:
        """Flip one bit in flight without re-framing.

        The envelope CRC catches this: :func:`decode_frame` raises and the
        receiving endpoint drops the datagram whole -- no protocol code
        ever sees the mangled payload.
        """
        return flip_bit(frame, bit_index)

    def attack_session(self, session_frame: bytes, candidate_keys: list[bytes]) -> bool:
        """Try to read a captured session frame with whatever keys were gathered."""
        try:
            _, ciphertext = decode_session_message(session_frame)
        except SerializationError:
            return False
        for key in candidate_keys:
            try:
                SecureChannel(key).receive(ciphertext)
            except (AuthenticationError, ValueError):
                continue
            self.outcome.session_messages_read += 1
            return True
        return False

    def tamper_session(self, session_frame: bytes) -> bytes:
        """Re-frame a session message with its AEAD ciphertext bit-flipped.

        Decode-then-tamper with a *valid* envelope: the codec accepts the
        forgery, and the receiver's MAC check must be what rejects it.
        """
        from repro.core.wire import encode_session_message

        channel_id, ciphertext = decode_session_message(session_frame)
        mangled = bytearray(ciphertext)
        mangled[len(mangled) // 2] ^= 0x01
        self.outcome.session_messages_forged += 1
        return encode_session_message(channel_id, bytes(mangled))
