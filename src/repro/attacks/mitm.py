"""Man-in-the-middle attack on channel establishment (Sec. IV-A2).

Diffie-Hellman without authentication falls to an active MITM; the
sealed-bottle key exchange does not, because the key material (``x`` and
``y``) is never exposed to anyone lacking the matching attributes.  The
attacker here fully controls the wire: it can read, drop, replay and
substitute both the request and the replies, and still cannot decrypt the
session channel or splice itself between the endpoints.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.matching import unseal_secret
from repro.core.protocols import Reply, build_reply_element
from repro.core.request import RequestPackage
from repro.crypto.authenticated import AuthenticationError
from repro.core.channel import SecureChannel

__all__ = ["ManInTheMiddle", "MitmOutcome"]


@dataclass
class MitmOutcome:
    """What the attacker managed to achieve."""

    read_x: bool = False
    read_y: bool = False
    session_messages_read: int = 0
    session_messages_forged: int = 0
    notes: list[str] = field(default_factory=list)


class ManInTheMiddle:
    """Active wire-controlling adversary without the matching attributes."""

    def __init__(self):
        self.observed_packages: list[RequestPackage] = []
        self.observed_replies: list[Reply] = []
        self.outcome = MitmOutcome()

    def intercept_request(self, package: RequestPackage) -> RequestPackage:
        """Observe (and forward) the request; try to unseal x without the key."""
        self.observed_packages.append(package)
        # Best effort: decrypt under a random guess key -- succeeds with
        # probability 2^-256; the point is there is no oracle to do better.
        guess_key = os.urandom(32)
        x, _ = unseal_secret(guess_key, package.protocol, package.ciphertext)
        if x is not None:
            self.outcome.read_x = True
            self.outcome.notes.append("confirmation verified under a guessed key (!)")
        return package

    def substitute_reply(self, reply: Reply) -> Reply:
        """Replace every reply element with attacker-keyed ones.

        Classic MITM splice attempt: if the initiator accepted one of these,
        the attacker would share ``y'`` with it.  The ACK check defeats it
        because the attacker cannot encrypt under the true ``x``.
        """
        self.observed_replies.append(reply)
        forged = tuple(
            build_reply_element(os.urandom(32), os.urandom(32), similarity=255)
            for _ in reply.elements
        )
        return Reply(
            request_id=reply.request_id,
            responder_id=reply.responder_id,
            elements=forged,
            sent_at_ms=reply.sent_at_ms,
        )

    def attack_session(self, channel_message: bytes, candidate_keys: list[bytes]) -> bool:
        """Try to read a session message with whatever keys were gathered."""
        for key in candidate_keys:
            try:
                SecureChannel(key).receive(channel_message)
            except (AuthenticationError, ValueError):
                continue
            self.outcome.session_messages_read += 1
            return True
        return False

    def tamper_session(self, channel_message: bytes) -> bytes:
        """Flip ciphertext bits; the receiver's MAC check must reject it."""
        tampered = bytearray(channel_message)
        tampered[len(tampered) // 2] ^= 0x01
        self.outcome.session_messages_forged += 1
        return bytes(tampered)
