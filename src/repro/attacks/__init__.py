"""Adversary implementations for the security evaluation (Sec. II-B, IV-A).

Each attack is executable against the real protocol code, so the privacy
protection levels of Tables I/II are *measured*, not asserted:

- :mod:`repro.attacks.dictionary` -- dictionary profiling of requests and
  probing of repliers by a malicious initiator.
- :mod:`repro.attacks.cheating` -- participants claiming a match they
  cannot prove (verifiability).
- :mod:`repro.attacks.mitm` -- man-in-the-middle on channel establishment.
- :mod:`repro.attacks.eavesdrop` -- passive global eavesdropper and the
  brute-force profiling cost estimate.
- :mod:`repro.attacks.dos` -- request flooding vs. the rate-limit defence.
"""

from repro.attacks.dictionary import DictionaryAttacker, ProbingInitiator
from repro.attacks.cheating import CheatingParticipant
from repro.attacks.eavesdrop import Eavesdropper, dictionary_profiling_guesses
from repro.attacks.mitm import ManInTheMiddle
from repro.attacks.dos import DosAttacker
from repro.attacks.timing import (
    ResponseTimeModel,
    dictionary_reply_delay_ms,
    honest_reply_delay_ms,
)

__all__ = [
    "CheatingParticipant",
    "DictionaryAttacker",
    "DosAttacker",
    "Eavesdropper",
    "ManInTheMiddle",
    "ProbingInitiator",
    "ResponseTimeModel",
    "dictionary_profiling_guesses",
    "dictionary_reply_delay_ms",
    "honest_reply_delay_ms",
]
