"""Response-time modelling for malicious-replier detection (Sec. III-E).

Protocol 2's third defence is temporal: an honest user holds a handful of
candidate keys and answers almost instantly, while a dictionary attacker
must grind through every remainder-compatible combination of its
dictionary before it can reply.  This module gives the delay model both
sides of that argument and the detector the initiator runs.

The per-operation costs default to this repository's measured Table IV
numbers, so the simulated delays are the delays the real code would incur.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.request import RequestPackage

__all__ = ["ResponseTimeModel", "honest_reply_delay_ms", "dictionary_reply_delay_ms"]


@dataclass(frozen=True)
class ResponseTimeModel:
    """Per-primitive costs (ms) used to predict a replier's delay."""

    hash_ms: float = 2e-3
    mod_ms: float = 4e-4
    decrypt_ms: float = 1.5e-1  # one 48-byte trial decryption (3 AES blocks)
    solve_ms: float = 4e-1  # one hint-system solve
    base_ms: float = 1.0  # radio + OS overhead

    def reply_delay_ms(self, n_hashes: int, n_mods: int, n_solves: int, n_keys: int) -> float:
        """Predicted delay for a replier doing the given amount of work."""
        return (
            self.base_ms
            + n_hashes * self.hash_ms
            + n_mods * self.mod_ms
            + n_solves * self.solve_ms
            + n_keys * self.decrypt_ms
        )


def honest_reply_delay_ms(
    model: ResponseTimeModel, m_k: int, candidate_keys: int, fuzzy: bool
) -> float:
    """Delay of an honest participant with *candidate_keys* candidates."""
    solves = candidate_keys if fuzzy else 0
    return model.reply_delay_ms(
        n_hashes=m_k + candidate_keys,
        n_mods=m_k,
        n_solves=solves,
        n_keys=candidate_keys,
    )


def dictionary_reply_delay_ms(
    model: ResponseTimeModel,
    package: RequestPackage,
    dictionary_size: int,
) -> float:
    """Delay of a dictionary attacker answering the same request.

    The attacker must hash its whole dictionary once, then walk every
    remainder-compatible combination: with buckets of expected size
    ``m/p`` at each of the m_t positions, that is ``(m/p)^{m_t}``
    key derivations and trial decryptions (Sec. IV-A1).
    """
    expected_bucket = dictionary_size / package.p
    combinations = expected_bucket ** package.m_t
    return model.reply_delay_ms(
        n_hashes=dictionary_size + combinations,
        n_mods=dictionary_size,
        n_solves=0,
        n_keys=combinations,
    )
