"""Denial-of-service attack and the frequency-limit defence (Sec. II-B).

The attacker floods the network with fresh friending requests.  Defence:
every node rate-limits relay/reply work per immediate neighbour (the paper:
"restricting the frequency of relay and reply requests from the same
user"), so the blast radius is bounded regardless of how many requests the
attacker mints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.attributes import RequestProfile
from repro.core.matching import build_request
from repro.core.request import RequestPackage
from repro.network.simulator import RateLimiter

__all__ = ["DosAttacker", "FloodOutcome"]


@dataclass
class FloodOutcome:
    """Result of a flood against one defended node."""

    sent: int
    processed: int
    dropped: int

    @property
    def absorption_ratio(self) -> float:
        """Fraction of attack traffic the defence absorbed."""
        return self.dropped / self.sent if self.sent else 0.0


class DosAttacker:
    """Mints arbitrarily many distinct requests from a throwaway profile."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    def mint_request(self, size: int = 3, p: int = 11) -> RequestPackage:
        """One fresh request with random attributes (new id every time)."""
        attrs = [f"junk:{self.rng.randrange(1 << 30)}" for _ in range(size)]
        package, _ = build_request(
            RequestProfile.exact(attrs), protocol=2, p=p, rng=self.rng, validity_ms=1 << 30
        )
        return package

    def flood_node(
        self,
        limiter: RateLimiter,
        n_requests: int,
        *,
        interval_ms: int = 10,
        start_ms: int = 0,
    ) -> FloodOutcome:
        """Send *n_requests* through one neighbour link guarded by *limiter*."""
        processed = 0
        dropped = 0
        now = start_ms
        for _ in range(n_requests):
            if limiter.allow("attacker", now):
                processed += 1
            else:
                dropped += 1
            now += interval_ms
        return FloodOutcome(sent=n_requests, processed=processed, dropped=dropped)
