"""Passive global eavesdropper and brute-force profiling cost (Sec. IV-A1).

The eavesdropper sees every packet.  What it observes of a request is the
remainder vector (log₂p bits of each attribute hash), the hint matrix and
an AES ciphertext; the paper's headline estimate is that compromising a
profile of m_t attributes from a dictionary of size m still costs
``(m/p)^{m_t}`` guesses because each remainder only shrinks the dictionary
by a factor p.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.protocols import Reply
from repro.core.request import RequestPackage

__all__ = ["Eavesdropper", "dictionary_profiling_guesses", "ObservedTraffic"]


def dictionary_profiling_guesses(dictionary_size: int, p: int, m_t: int) -> float:
    """Expected brute-force guesses ``(m/p)^{m_t}`` (Sec. IV-A1).

    For the Tencent Weibo numbers (m ≈ 2²⁰, p = 11, m_t = 6) this is about
    2^99.3 -- the paper rounds to 2^100.  ``p = 1`` models plain brute force
    with no remainder-vector help.
    """
    if dictionary_size < 1 or p < 1 or m_t < 1:
        raise ValueError("invalid attack parameters")
    return (dictionary_size / p) ** m_t


def profiling_guesses_log2(dictionary_size: int, p: int, m_t: int) -> float:
    """log₂ of the guess count (avoids overflow for paper-scale numbers)."""
    return m_t * (math.log2(dictionary_size) - math.log2(p))


@dataclass
class ObservedTraffic:
    """Everything a passive adversary collected."""

    packages: list[RequestPackage] = field(default_factory=list)
    replies: list[Reply] = field(default_factory=list)

    @property
    def observed_bytes(self) -> int:
        request_bytes = sum(p.wire_size_bytes() for p in self.packages)
        reply_bytes = sum(48 * len(r.elements) for r in self.replies)
        return request_bytes + reply_bytes


class Eavesdropper:
    """Collects traffic and reports what is (and is not) inferable."""

    def __init__(self):
        self.traffic = ObservedTraffic()

    def observe_request(self, package: RequestPackage) -> None:
        self.traffic.packages.append(package)

    def observe_reply(self, reply: Reply) -> None:
        self.traffic.replies.append(reply)

    def attribute_hashes_observed(self) -> int:
        """Attribute hash values transmitted in the clear: always zero.

        The request carries remainders (mod p) and the sealed message only;
        no packet ever contains a full attribute hash, so no hash
        dictionary can be built from this system's traffic.
        """
        return 0

    def remainder_information_bits(self) -> float:
        """Total information revealed by remainders: m_t·log₂(p) per request."""
        return sum(len(pkg.remainders) * math.log2(pkg.p) for pkg in self.traffic.packages)
