"""Passive global eavesdropper and brute-force profiling cost (Sec. IV-A1).

The eavesdropper sees every **datagram** -- it is wired into the engine as
a frame tap (``FriendingEngine(frame_tap=eve.capture)``) and receives the
exact bytes the channel delivers on every link.  What it can reconstruct
is what the frames decode to: request packages (remainder vector, hint
matrix, an AES ciphertext) and acknowledge replies (opaque sealed
elements).  The paper's headline estimate is that compromising a profile
of m_t attributes from a dictionary of size m still costs ``(m/p)^{m_t}``
guesses because each remainder only shrinks the dictionary by a factor p.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.exceptions import SerializationError
from repro.core.protocols import Reply
from repro.core.request import RequestPackage
from repro.core.wire import (
    FT_REPLY,
    FT_REQUEST,
    decode_frame,
    decode_payload,
    encode_reply_frame,
    encode_request_frame,
)

__all__ = ["Eavesdropper", "dictionary_profiling_guesses", "ObservedTraffic"]


def dictionary_profiling_guesses(dictionary_size: int, p: int, m_t: int) -> float:
    """Expected brute-force guesses ``(m/p)^{m_t}`` (Sec. IV-A1).

    For the Tencent Weibo numbers (m ≈ 2²⁰, p = 11, m_t = 6) this is about
    2^99.3 -- the paper rounds to 2^100.  ``p = 1`` models plain brute force
    with no remainder-vector help.
    """
    if dictionary_size < 1 or p < 1 or m_t < 1:
        raise ValueError("invalid attack parameters")
    return (dictionary_size / p) ** m_t


def profiling_guesses_log2(dictionary_size: int, p: int, m_t: int) -> float:
    """log₂ of the guess count (avoids overflow for paper-scale numbers)."""
    return m_t * (math.log2(dictionary_size) - math.log2(p))


@dataclass
class ObservedTraffic:
    """Everything a passive adversary collected off the air.

    ``frames_captured``/``observed_bytes`` count every datagram copy (the
    radio medium repeats the same request on every link); ``packages`` and
    ``replies`` are what those frames *decode to*, deduplicated to the
    distinct protocol messages -- repetition carries no new information.
    ``undecodable`` counts frames that failed envelope validation (channel
    corruption): the adversary cannot read them either.
    """

    packages: dict[bytes, RequestPackage] = field(default_factory=dict)
    replies: list[Reply] = field(default_factory=list)
    frames_captured: int = 0
    observed_bytes: int = 0
    undecodable: int = 0
    _reply_keys: set[tuple[bytes, str]] = field(default_factory=set)


class Eavesdropper:
    """Collects frames off the wire; reports what is (and is not) inferable."""

    def __init__(self):
        self.traffic = ObservedTraffic()

    # -- wire-level capture (the engine's frame tap) -------------------------

    def capture(self, src: str, dst: str, data: bytes) -> None:
        """Record one datagram copy exactly as the channel delivered it."""
        traffic = self.traffic
        traffic.frames_captured += 1
        traffic.observed_bytes += len(data)
        try:
            frame = decode_frame(data)
            message = decode_payload(frame)
        except SerializationError:
            traffic.undecodable += 1
            return
        if frame.ftype == FT_REQUEST:
            traffic.packages.setdefault(message.request_id, message)
        elif frame.ftype == FT_REPLY:
            key = (message.request_id, message.responder_id)
            if key not in traffic._reply_keys:
                traffic._reply_keys.add(key)
                traffic.replies.append(message)

    # -- object-level convenience (standalone analyses) ----------------------

    def observe_request(self, package: RequestPackage) -> None:
        """Capture the frame this package would broadcast as."""
        self.capture("", "", encode_request_frame(package))

    def observe_reply(self, reply: Reply) -> None:
        """Capture the frame this reply would travel as."""
        self.capture("", "", encode_reply_frame(reply))

    # -- what the traffic reveals -------------------------------------------

    def attribute_hashes_observed(self) -> int:
        """Attribute hash values transmitted in the clear: always zero.

        The request carries remainders (mod p) and the sealed message only;
        no frame ever contains a full attribute hash, so no hash
        dictionary can be built from this system's traffic.
        """
        return 0

    def remainder_information_bits(self) -> float:
        """Information revealed by remainders: m_t·log₂(p) per distinct request.

        Re-broadcast copies of the same request are the same bits; only
        distinct requests contribute.
        """
        return sum(
            len(pkg.remainders) * math.log2(pkg.p)
            for pkg in self.traffic.packages.values()
        )
