"""Number-theoretic utilities for the asymmetric baselines.

The sealed-bottle protocols themselves need nothing beyond SHA-256, AES and
``mod p`` with a small prime.  The comparators the paper evaluates against
(FNP04, FC10, FindU-style PSI-CA, dot-product matching) are built on
big-number arithmetic, all of which is implemented here: Miller-Rabin
primality, random/safe prime generation, modular inverse, CRT recombination
and Jacobi symbols.
"""

from __future__ import annotations

import random

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "generate_safe_prime",
    "invmod",
    "crt_pair",
    "jacobi",
    "lcm",
    "random_coprime",
]

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
]


def is_probable_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test with *rounds* random bases."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random | None = None) -> int:
    """Generate a random prime of exactly *bits* bits."""
    if bits < 8:
        raise ValueError("bits must be >= 8")
    rng = rng or random
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def generate_safe_prime(bits: int, rng: random.Random | None = None) -> int:
    """Generate a safe prime p = 2q + 1 with q prime.

    Used by the DH-based PSI-CA baseline, which needs a prime-order subgroup.
    """
    rng = rng or random
    while True:
        q = generate_prime(bits - 1, rng=rng)
        p = 2 * q + 1
        if is_probable_prime(p, rng=rng):
            return p


def invmod(a: int, m: int) -> int:
    """Modular inverse of *a* mod *m*; raises ValueError if not invertible."""
    g, x, _ = _extended_gcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} is not invertible modulo {m}")
    return x % m


def _extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def crt_pair(r_p: int, p: int, r_q: int, q: int) -> int:
    """Recombine residues mod two coprime moduli via the CRT."""
    q_inv = invmod(q, p)
    h = (q_inv * (r_p - r_q)) % p
    return r_q + h * q


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd n > 0."""
    if n <= 0 or n % 2 == 0:
        raise ValueError("n must be a positive odd integer")
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def lcm(a: int, b: int) -> int:
    """Least common multiple."""
    from math import gcd

    return a // gcd(a, b) * b


def random_coprime(m: int, rng: random.Random | None = None) -> int:
    """Random element of Z_m* (coprime to m)."""
    from math import gcd

    rng = rng or random
    while True:
        r = rng.randrange(1, m)
        if gcd(r, m) == 1:
            return r
