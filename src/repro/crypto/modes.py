"""Block cipher modes of operation and PKCS#7 padding.

Three modes are provided because the protocols need different malleability
properties:

- **ECB/CBC** are used where the plaintext is exactly key-sized material and
  deterministic encryption is acceptable (sealed ``x`` in Protocols 2/3 must
  decrypt to *something* under every wrong key -- no integrity oracle).
- **CTR** is the stream layer underneath the authenticated channel.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.crypto.aes import AES, BLOCK_SIZE

__all__ = [
    "PaddingError",
    "pkcs7_pad",
    "pkcs7_unpad",
    "encrypt_ecb",
    "decrypt_ecb",
    "encrypt_ecb_under_keys",
    "decrypt_ecb_under_keys",
    "encrypt_cbc",
    "decrypt_cbc",
    "ctr_keystream",
    "encrypt_ctr",
    "decrypt_ctr",
]


class PaddingError(ValueError):
    """Raised when PKCS#7 padding is malformed."""


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Pad *data* to a multiple of *block_size* (always adds >= 1 byte)."""
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len] * pad_len)


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise PaddingError("ciphertext length is not a multiple of the block size")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size:
        raise PaddingError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len] * pad_len):
        raise PaddingError("padding bytes are inconsistent")
    return data[:-pad_len]


def _blocks(data: bytes):
    for i in range(0, len(data), BLOCK_SIZE):
        yield data[i : i + BLOCK_SIZE]


def encrypt_ecb(key: bytes, plaintext: bytes) -> bytes:
    """ECB over already block-aligned plaintext (no padding added)."""
    if len(plaintext) % BLOCK_SIZE:
        raise ValueError("ECB requires block-aligned plaintext")
    cipher = AES(key)
    return b"".join(cipher.encrypt_block(b) for b in _blocks(plaintext))


def decrypt_ecb(key: bytes, ciphertext: bytes) -> bytes:
    """ECB decryption of block-aligned ciphertext."""
    if len(ciphertext) % BLOCK_SIZE:
        raise ValueError("ECB requires block-aligned ciphertext")
    cipher = AES(key)
    return b"".join(cipher.decrypt_block(b) for b in _blocks(ciphertext))


def encrypt_ecb_under_keys(keys: Sequence[bytes], plaintext: bytes) -> list[bytes]:
    """ECB-encrypt one block-aligned plaintext under each of *keys*.

    The batched hot path of reply-element construction: a Protocol 2/3
    candidate seals the same ``(ack, similarity, y)`` payload under every
    candidate key it recovered.  Splitting the plaintext into blocks once
    amortizes the framing work across the whole key set.
    """
    if len(plaintext) % BLOCK_SIZE:
        raise ValueError("ECB requires block-aligned plaintext")
    blocks = list(_blocks(plaintext))
    return [
        b"".join(cipher.encrypt_block(b) for b in blocks)
        for cipher in map(AES, keys)
    ]


def decrypt_ecb_under_keys(keys: Sequence[bytes], ciphertext: bytes) -> list[bytes]:
    """ECB-decrypt one block-aligned ciphertext under each of *keys*.

    Trial decryption of the sealed message under a candidate key set --
    the participant-side counterpart of :func:`encrypt_ecb_under_keys`.
    """
    if len(ciphertext) % BLOCK_SIZE:
        raise ValueError("ECB requires block-aligned ciphertext")
    blocks = list(_blocks(ciphertext))
    return [
        b"".join(cipher.decrypt_block(b) for b in blocks)
        for cipher in map(AES, keys)
    ]


def encrypt_cbc(key: bytes, plaintext: bytes, iv: bytes) -> bytes:
    """CBC with PKCS#7 padding."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("IV must be one block")
    cipher = AES(key)
    padded = pkcs7_pad(plaintext)
    out = bytearray()
    prev = iv
    for block in _blocks(padded):
        mixed = bytes(a ^ b for a, b in zip(block, prev))
        prev = cipher.encrypt_block(mixed)
        out.extend(prev)
    return bytes(out)


def decrypt_cbc(key: bytes, ciphertext: bytes, iv: bytes) -> bytes:
    """CBC decryption; raises :class:`PaddingError` on bad padding."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("IV must be one block")
    cipher = AES(key)
    out = bytearray()
    prev = iv
    for block in _blocks(ciphertext):
        plain = cipher.decrypt_block(block)
        out.extend(a ^ b for a, b in zip(plain, prev))
        prev = block
    return pkcs7_unpad(bytes(out))


def ctr_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Generate *length* keystream bytes for CTR mode.

    The counter block is ``nonce (8 bytes) || counter (8 bytes, big endian)``.
    """
    if len(nonce) != 8:
        raise ValueError("CTR nonce must be 8 bytes")
    cipher = AES(key)
    stream = bytearray()
    counter = 0
    while len(stream) < length:
        block = nonce + counter.to_bytes(8, "big")
        stream.extend(cipher.encrypt_block(block))
        counter += 1
    return bytes(stream[:length])


def encrypt_ctr(key: bytes, plaintext: bytes, nonce: bytes) -> bytes:
    """CTR encryption (length-preserving, malleable by design)."""
    stream = ctr_keystream(key, nonce, len(plaintext))
    return bytes(a ^ b for a, b in zip(plaintext, stream))


def decrypt_ctr(key: bytes, ciphertext: bytes, nonce: bytes) -> bytes:
    """CTR decryption (identical to encryption)."""
    return encrypt_ctr(key, ciphertext, nonce)
