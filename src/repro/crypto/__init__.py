"""From-scratch cryptographic substrate for the sealed-bottle protocols.

The paper's mechanism relies exclusively on symmetric primitives (SHA-256,
AES-256) plus small-modulus arithmetic, while the baselines it compares
against need big-number asymmetric primitives.  This package implements all
of them with no third-party dependencies:

- :mod:`repro.crypto.aes` -- FIPS-197 AES block cipher (128/192/256).
- :mod:`repro.crypto.backend` -- pluggable ``pure``/``tables`` backends; the
  ``tables`` backend batches whole buffers and key sets through one call.
- :mod:`repro.crypto.modes` -- ECB/CBC/CTR modes and PKCS#7 padding.
- :mod:`repro.crypto.authenticated` -- encrypt-then-MAC AEAD used for the
  post-match secure channel.
- :mod:`repro.crypto.hashes` -- SHA-256 helpers and integer conversions.
- :mod:`repro.crypto.kdf` -- HKDF-SHA256.
- :mod:`repro.crypto.numbers` -- modular arithmetic and prime generation for
  the asymmetric baselines.
- :mod:`repro.crypto.rng` -- deterministic HMAC-DRBG for reproducible runs.
"""

from repro.crypto.aes import AES
from repro.crypto.authenticated import AuthenticatedCipher, AuthenticationError
from repro.crypto.backend import (
    CryptoBackend,
    available_backends,
    current_backend,
    get_backend,
    set_backend,
    use_backend,
)
from repro.crypto.hashes import (
    sha256,
    sha256_int,
    int_to_bytes,
    bytes_to_int,
    hash_attribute,
    hash_vector_key,
)
from repro.crypto.kdf import hkdf
from repro.crypto.modes import (
    ctr_keystream,
    decrypt_cbc,
    decrypt_ctr,
    decrypt_ecb,
    encrypt_cbc,
    encrypt_ctr,
    encrypt_ecb,
    pkcs7_pad,
    pkcs7_unpad,
    PaddingError,
)
from repro.crypto.rng import HmacDrbg

__all__ = [
    "AES",
    "AuthenticatedCipher",
    "AuthenticationError",
    "CryptoBackend",
    "HmacDrbg",
    "PaddingError",
    "available_backends",
    "bytes_to_int",
    "current_backend",
    "get_backend",
    "set_backend",
    "use_backend",
    "ctr_keystream",
    "decrypt_cbc",
    "decrypt_ctr",
    "decrypt_ecb",
    "encrypt_cbc",
    "encrypt_ctr",
    "encrypt_ecb",
    "hash_attribute",
    "hash_vector_key",
    "hkdf",
    "int_to_bytes",
    "pkcs7_pad",
    "pkcs7_unpad",
    "sha256",
    "sha256_int",
]
