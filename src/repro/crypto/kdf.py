"""HKDF-SHA256 key derivation (RFC 5869)."""

from __future__ import annotations

from repro.crypto.hashes import HASH_BYTES, hmac_sha256

__all__ = ["hkdf", "hkdf_extract", "hkdf_expand"]


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """Extract step: PRK = HMAC(salt, ikm)."""
    if not salt:
        salt = b"\x00" * HASH_BYTES
    return hmac_sha256(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """Expand step producing *length* output bytes."""
    if length > 255 * HASH_BYTES:
        raise ValueError("requested HKDF output too long")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac_sha256(prk, previous + info + bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(ikm: bytes, *, salt: bytes = b"", info: bytes = b"", length: int = 32) -> bytes:
    """One-shot HKDF-SHA256."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)
