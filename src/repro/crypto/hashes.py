"""SHA-256 helpers and the attribute/profile hashing conventions.

Section III-B of the paper hashes each normalized attribute with SHA-256 to
obtain the profile vector, then hashes the vector again to obtain the
256-bit AES profile key (Eq. 2-3).  This module centralises those
conventions so that initiator and participants always agree bit-for-bit.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Sequence

__all__ = [
    "HASH_BITS",
    "HASH_BYTES",
    "sha256",
    "sha256_int",
    "int_to_bytes",
    "bytes_to_int",
    "hash_attribute",
    "hash_vector_key",
    "hmac_sha256",
]

HASH_BITS = 256
HASH_BYTES = HASH_BITS // 8


def sha256(data: bytes) -> bytes:
    """SHA-256 digest of *data*."""
    return hashlib.sha256(data).digest()


def sha256_int(data: bytes) -> int:
    """SHA-256 digest of *data* interpreted as a big-endian 256-bit integer."""
    return int.from_bytes(hashlib.sha256(data).digest(), "big")


def int_to_bytes(value: int, length: int = HASH_BYTES) -> bytes:
    """Encode a non-negative integer as a fixed-width big-endian byte string."""
    if value < 0:
        raise ValueError("value must be non-negative")
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian byte string into an integer."""
    return int.from_bytes(data, "big")


def hash_attribute(attribute: str, binding: bytes | None = None) -> int:
    """Hash one normalized attribute to its 256-bit integer value.

    When *binding* is given (the dynamic location key of Sec. III-D3), the
    hash covers ``attribute || binding`` so the same static attribute hashes
    differently at different locations, hardening dictionary profiling.
    """
    payload = attribute.encode("utf-8")
    if binding is not None:
        payload += b"\x00" + binding
    return sha256_int(payload)


def hash_vector_key(hash_values: Sequence[int] | Iterable[int]) -> bytes:
    """Derive the 256-bit profile key ``K = H(H_k)`` from a profile vector.

    The vector elements are serialized as fixed-width 32-byte big-endian
    integers in order, so both endpoints derive the identical key for the
    identical sorted vector.
    """
    hasher = hashlib.sha256()
    for value in hash_values:
        hasher.update(int_to_bytes(value))
    return hasher.digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA256 (RFC 2104) built directly on the hash primitive."""
    block_size = 64
    if len(key) > block_size:
        key = sha256(key)
    key = key.ljust(block_size, b"\x00")
    inner = sha256(bytes(k ^ 0x36 for k in key) + data)
    return sha256(bytes(k ^ 0x5C for k in key) + inner)
