"""SHA-256 helpers and the attribute/profile hashing conventions.

Section III-B of the paper hashes each normalized attribute with SHA-256 to
obtain the profile vector, then hashes the vector again to obtain the
256-bit AES profile key (Eq. 2-3).  This module centralises those
conventions so that initiator and participants always agree bit-for-bit.
"""

from __future__ import annotations

import hashlib
import hmac
from collections.abc import Iterable, Sequence

__all__ = [
    "HASH_BITS",
    "HASH_BYTES",
    "sha256",
    "sha256_int",
    "int_to_bytes",
    "bytes_to_int",
    "hash_attribute",
    "hash_vector_key",
    "hmac_sha256",
]

HASH_BITS = 256
HASH_BYTES = HASH_BITS // 8


def sha256(data: bytes) -> bytes:
    """SHA-256 digest of *data*."""
    return hashlib.sha256(data).digest()


def sha256_int(data: bytes) -> int:
    """SHA-256 digest of *data* interpreted as a big-endian 256-bit integer."""
    return int.from_bytes(hashlib.sha256(data).digest(), "big")


def int_to_bytes(value: int, length: int = HASH_BYTES) -> bytes:
    """Encode a non-negative integer as a fixed-width big-endian byte string."""
    if value < 0:
        raise ValueError("value must be non-negative")
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian byte string into an integer."""
    return int.from_bytes(data, "big")


def hash_attribute(attribute: str, binding: bytes | None = None) -> int:
    """Hash one normalized attribute to its 256-bit integer value.

    When *binding* is given (the dynamic location key of Sec. III-D3), the
    hash covers ``attribute || binding`` so the same static attribute hashes
    differently at different locations, hardening dictionary profiling.
    """
    payload = attribute.encode("utf-8")
    if binding is not None:
        payload += b"\x00" + binding
    return sha256_int(payload)


def hash_vector_key(hash_values: Sequence[int] | Iterable[int]) -> bytes:
    """Derive the 256-bit profile key ``K = H(H_k)`` from a profile vector.

    The vector elements are serialized as fixed-width 32-byte big-endian
    integers in order, so both endpoints derive the identical key for the
    identical sorted vector.
    """
    hasher = hashlib.sha256()
    for value in hash_values:
        hasher.update(int_to_bytes(value))
    return hasher.digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA256 (RFC 2104) via the stdlib one-shot fast path.

    ``hmac.digest`` computes the identical RFC 2104 construction (same
    pads, same block size) inside OpenSSL; the per-byte pad XOR this
    helper used to spell out in Python was costing more than both hash
    invocations together, and it runs once per reply a participant sends.
    """
    return hmac.digest(key, data, "sha256")
