"""Pluggable crypto backends: the batched symmetric hot path.

Every friending episode is dominated by symmetric work: sealing the
request under the profile key, trial-decrypting the sealed message under
every candidate key, sealing one acknowledge element per candidate, and
the initiator opening reply elements (Tables IV-VII of the paper measure
exactly this cost).  The seed implementation drives all of it through
:mod:`repro.crypto.aes`'s per-block, per-round Python loops.

This module introduces a backend seam with two implementations:

``pure``
    The from-scratch reference substrate, byte-for-byte the seed
    behaviour: :mod:`repro.crypto.modes` per-block AES, plus the
    from-scratch :func:`repro.crypto.sha256.sha256_pure` behind the
    backend's ``sha256`` primitive.

``tables`` (default)
    A table-driven implementation that processes *whole multi-block
    buffers in one call*.  SubBytes/InvSubBytes run through 256-byte
    translation tables via :meth:`bytes.translate` (C speed); ShiftRows,
    MixColumns and AddRoundKey run as SWAR bitwise algebra on one large
    integer covering the entire buffer, so the Python interpreter
    executes a few dozen operations per *round per buffer* instead of
    dozens per *round per block*.  :meth:`~CryptoBackend.open_many` and
    :meth:`~CryptoBackend.seal_many` extend the same trick across keys:
    all candidate keys of a reply element are trial-decrypted in a
    single pass over one packed integer.  SHA-256 takes the
    :mod:`hashlib` fast path (stdlib only; the pure implementation is
    kept and cross-checked in the tests).

Both backends produce bit-identical ciphertext (pinned by hypothesis
equivalence properties in ``tests/crypto/test_backend.py``), so backend
choice is purely a speed/readability trade —
``benchmarks/bench_crypto_backends.py`` quantifies it and appends the
measurement to the ``BENCH_crypto.json`` trajectory.

Scope note: the protocol hot path routes its *AES* work through the
selected backend.  Profile hashing (:mod:`repro.crypto.hashes`) is
hashlib everywhere — that already was the seed's fast path — so the
backend's ``sha256`` primitive exists to make the pure-vs-hashlib gap
measurable (the Table IV question), not to change protocol hashing.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from collections.abc import Sequence
from contextlib import contextmanager

from repro.crypto.aes import BLOCK_SIZE, _INV_SBOX, _RCON, _ROUNDS_BY_KEY_LEN, _SBOX
from repro.crypto.modes import (
    decrypt_ecb as _pure_decrypt_ecb,
    decrypt_ecb_under_keys as _pure_decrypt_under_keys,
    encrypt_ecb as _pure_encrypt_ecb,
    encrypt_ecb_under_keys as _pure_encrypt_under_keys,
)
from repro.crypto.sha256 import sha256_pure

__all__ = [
    "CryptoBackend",
    "PureBackend",
    "TablesBackend",
    "available_backends",
    "current_backend",
    "get_backend",
    "set_backend",
    "use_backend",
]

DEFAULT_BACKEND = "tables"


class CryptoBackend:
    """Interface every crypto backend implements.

    All buffer arguments must be block-aligned (multiples of 16 bytes);
    backends raise ``ValueError`` otherwise, matching
    :mod:`repro.crypto.modes`.  Backends are stateless apart from
    internal caches, so one instance can be shared freely.
    """

    name: str = "abstract"

    def encrypt_ecb(self, key: bytes, plaintext: bytes) -> bytes:
        """ECB-encrypt a whole block-aligned buffer under one key."""
        raise NotImplementedError

    def decrypt_ecb(self, key: bytes, ciphertext: bytes) -> bytes:
        """ECB-decrypt a whole block-aligned buffer under one key."""
        raise NotImplementedError

    def seal_many(self, keys: Sequence[bytes], plaintext: bytes) -> list[bytes]:
        """Encrypt one block-aligned plaintext under each of *keys*.

        The reply-building hot path: a Protocol 2/3 candidate seals the
        same acknowledge payload under every candidate key it recovered.
        """
        raise NotImplementedError

    def open_many(self, keys: Sequence[bytes], ciphertext: bytes) -> list[bytes]:
        """Trial-decrypt one block-aligned ciphertext under each of *keys*.

        The participant-side hot path: the sealed message is opened under
        every candidate profile key, amortizing schedule lookup and the
        round loops across the whole key set.
        """
        raise NotImplementedError

    def sha256(self, data: bytes) -> bytes:
        """SHA-256 digest of *data*."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover -- debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class PureBackend(CryptoBackend):
    """The seed behaviour: per-block pure-Python AES, from-scratch SHA-256."""

    name = "pure"

    def encrypt_ecb(self, key: bytes, plaintext: bytes) -> bytes:
        return _pure_encrypt_ecb(key, plaintext)

    def decrypt_ecb(self, key: bytes, ciphertext: bytes) -> bytes:
        return _pure_decrypt_ecb(key, ciphertext)

    def seal_many(self, keys: Sequence[bytes], plaintext: bytes) -> list[bytes]:
        if not keys:
            _require_aligned(plaintext, "plaintext")
            return []
        return _pure_encrypt_under_keys(keys, plaintext)

    def open_many(self, keys: Sequence[bytes], ciphertext: bytes) -> list[bytes]:
        if not keys:
            _require_aligned(ciphertext, "ciphertext")
            return []
        return _pure_decrypt_under_keys(keys, ciphertext)

    def sha256(self, data: bytes) -> bytes:
        return sha256_pure(data)


# -- tables backend ----------------------------------------------------------

_SBOX_TABLE = bytes(_SBOX)
_INV_SBOX_TABLE = bytes(_INV_SBOX)


def _pattern_mask(offsets: Sequence[int], n_blocks: int) -> int:
    """Big-endian mask selecting byte *offsets* within every 16-byte block."""
    pattern = bytearray(BLOCK_SIZE)
    for offset in offsets:
        pattern[offset] = 0xFF
    return int.from_bytes(bytes(pattern) * n_blocks, "big")


class _SwarMasks:
    """All repeating byte-position masks for a buffer of *n_blocks* blocks.

    The state is column-major inside each block (byte of row ``r``,
    column ``c`` lives at offset ``4c + r``) and the whole buffer is one
    big-endian integer, so moving a byte to a lower offset is a left
    shift.  Every mask is a 16-byte pattern repeated ``n_blocks`` times;
    a single masked shift therefore applies the same permutation step to
    every block of the buffer at once.
    """

    __slots__ = (
        "lo7", "hi1", "row", "sr_left", "sr_right", "isr_left", "isr_right",
        "rot1_hi", "rot2_hi", "rot2_lo", "rot3_lo",
    )

    def __init__(self, n_blocks: int):
        self.lo7 = int.from_bytes(b"\x7f" * (BLOCK_SIZE * n_blocks), "big")
        self.hi1 = int.from_bytes(b"\x80" * (BLOCK_SIZE * n_blocks), "big")
        self.row = [
            _pattern_mask([4 * c + r for c in range(4)], n_blocks) for r in range(4)
        ]
        # ShiftRows sends the byte at offset 4c+r to 4((c-r) mod 4)+r:
        # columns c >= r move left by 32r bits, columns c < r wrap right.
        self.sr_left = [
            _pattern_mask([4 * c + r for c in range(r, 4)], n_blocks) for r in range(4)
        ]
        self.sr_right = [
            _pattern_mask([4 * c + r for c in range(r)], n_blocks) for r in range(4)
        ]
        # InvShiftRows sends 4c+r to 4((c+r) mod 4)+r: the mirror image.
        self.isr_right = [
            _pattern_mask([4 * c + r for c in range(4 - r)], n_blocks) for r in range(4)
        ]
        self.isr_left = [
            _pattern_mask([4 * c + r for c in range(4 - r, 4)], n_blocks) for r in range(4)
        ]
        # Byte rotations inside each column, for the MixColumns algebra.
        self.rot1_hi = self.row[1] | self.row[2] | self.row[3]
        self.rot2_hi = self.row[2] | self.row[3]
        self.rot2_lo = self.row[0] | self.row[1]
        self.rot3_lo = self.row[0] | self.row[1] | self.row[2]


class TablesBackend(CryptoBackend):
    """Whole-buffer AES via translation tables + SWAR big-int algebra.

    One call encrypts/decrypts every block of the buffer: SubBytes is a
    single :meth:`bytes.translate` over the buffer, and the linear layers
    are a handful of mask/shift/xor operations on one arbitrary-precision
    integer, all executing in C.  Cost per round is therefore ~40 Python
    operations for the *entire* buffer, against ~60 per *block* for the
    pure backend -- the bigger the batch, the bigger the win (the crypto
    bench measures >20x on kilobyte buffers, >4x even on one 48-byte
    reply element).
    """

    name = "tables"

    # Masks are pure functions of the block count; buffers repeat a small
    # set of shapes (48-byte elements, n_keys * 3 blocks, ...), so a
    # bounded cache makes them effectively free.
    _MASK_CACHE_MAX = 64
    _RK_CACHE_MAX = 1024

    def __init__(self):
        self._masks: OrderedDict[int, _SwarMasks] = OrderedDict()
        self._round_keys: OrderedDict[bytes, list[bytes]] = OrderedDict()

    # -- caches -------------------------------------------------------------

    def _masks_for(self, n_blocks: int) -> _SwarMasks:
        masks = self._masks.get(n_blocks)
        if masks is None:
            masks = self._masks[n_blocks] = _SwarMasks(n_blocks)
            while len(self._masks) > self._MASK_CACHE_MAX:
                self._masks.popitem(last=False)
        else:
            self._masks.move_to_end(n_blocks)
        return masks

    def _round_key_bytes(self, key: bytes) -> list[bytes]:
        """Per-round 16-byte round keys for one key (cached)."""
        rks = self._round_keys.get(key)
        if rks is None:
            rks = self._expand_uncached([bytes(key)])[0]
        else:
            self._round_keys.move_to_end(key)
        return rks

    def _expand_uncached(self, keys: list[bytes]) -> list[list[bytes]]:
        """SWAR key schedule: expand many same-length keys in one pass.

        The FIPS-197 schedule is sequential in *words* but embarrassingly
        parallel across *keys*, so word ``i`` of every key is computed at
        once on one packed integer: RotWord is a masked rotate, SubWord a
        single :meth:`bytes.translate`, the rest XORs.  Trial decryption
        mints mostly-fresh candidate keys (wrong-key decryptions of the
        sealed message), so expansion -- not the rounds -- dominates once
        the round loops are batched; this removes that wall.  Results are
        cached per key; every key in *keys* must have the same length.
        """
        n_keys = len(keys)
        key_len = len(keys[0])
        _validate_key_len(key_len)
        rounds = _ROUNDS_BY_KEY_LEN[key_len]
        nk = key_len // 4
        total_words = 4 * (rounds + 1)
        cell = 4 * n_keys
        words = [
            int.from_bytes(b"".join(key[4 * i : 4 * i + 4] for key in keys), "big")
            for i in range(nk)
        ]
        tail3 = int.from_bytes(b"\x00\xff\xff\xff" * n_keys, "big")
        head1 = int.from_bytes(b"\xff\x00\x00\x00" * n_keys, "big")
        for i in range(nk, total_words):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp & tail3) << 8) | ((temp & head1) >> 24)
                temp = int.from_bytes(
                    temp.to_bytes(cell, "big").translate(_SBOX_TABLE), "big"
                )
                rcon = _RCON[i // nk - 1]
                temp ^= int.from_bytes(bytes([rcon, 0, 0, 0]) * n_keys, "big")
            elif nk > 6 and i % nk == 4:
                temp = int.from_bytes(
                    temp.to_bytes(cell, "big").translate(_SBOX_TABLE), "big"
                )
            words.append(words[i - nk] ^ temp)
        word_bytes = [w.to_bytes(cell, "big") for w in words]
        schedules = []
        for j in range(n_keys):
            lo = 4 * j
            rks = [
                b"".join(word_bytes[4 * r + c][lo : lo + 4] for c in range(4))
                for r in range(rounds + 1)
            ]
            self._round_keys[keys[j]] = rks
            schedules.append(rks)
        while len(self._round_keys) > self._RK_CACHE_MAX:
            self._round_keys.popitem(last=False)
        return schedules

    def _schedules_for(self, keys: list[bytes]) -> list[list[bytes]]:
        """Round keys for a same-length key group, batch-expanding misses.

        Results are held locally rather than re-read from the cache: a
        large burst of fresh keys may evict this call's own hits.
        """
        schedules: dict[bytes, list[bytes]] = {}
        missing: list[bytes] = []
        for key in keys:
            if key in schedules:
                continue
            cached = self._round_keys.get(key)
            if cached is not None:
                self._round_keys.move_to_end(key)
                schedules[key] = cached
            else:
                missing.append(bytes(key))
                schedules[key] = []  # placeholder: marks the key as seen
        if missing:
            for key, rks in zip(missing, self._expand_uncached(missing)):
                schedules[key] = rks
        return [schedules[key] for key in keys]

    # -- SWAR building blocks ----------------------------------------------

    @staticmethod
    def _shift_rows(state: int, m: _SwarMasks) -> int:
        out = state & m.row[0]
        out |= ((state & m.sr_left[1]) << 32) | ((state & m.sr_right[1]) >> 96)
        out |= ((state & m.sr_left[2]) << 64) | ((state & m.sr_right[2]) >> 64)
        out |= ((state & m.sr_left[3]) << 96) | ((state & m.sr_right[3]) >> 32)
        return out

    @staticmethod
    def _inv_shift_rows(state: int, m: _SwarMasks) -> int:
        out = state & m.row[0]
        out |= ((state & m.isr_right[1]) >> 32) | ((state & m.isr_left[1]) << 96)
        out |= ((state & m.isr_right[2]) >> 64) | ((state & m.isr_left[2]) << 64)
        out |= ((state & m.isr_right[3]) >> 96) | ((state & m.isr_left[3]) << 32)
        return out

    @staticmethod
    def _rot1(state: int, m: _SwarMasks) -> int:
        """Rotate each column up one byte (row r takes row r+1)."""
        return ((state & m.rot1_hi) << 8) | ((state & m.row[0]) >> 24)

    @staticmethod
    def _rot2(state: int, m: _SwarMasks) -> int:
        return ((state & m.rot2_hi) << 16) | ((state & m.rot2_lo) >> 16)

    @staticmethod
    def _rot3(state: int, m: _SwarMasks) -> int:
        return ((state & m.row[3]) << 24) | ((state & m.rot3_lo) >> 8)

    @staticmethod
    def _xtime(state: int, m: _SwarMasks) -> int:
        """Multiply every byte by x in GF(2^8), all blocks at once.

        The reduction term is a multiply: isolating the carried-out high
        bits leaves one bit per byte, so ``* 0x1B`` spreads the Rijndael
        polynomial into exactly the right bytes without carries.
        """
        return ((state & m.lo7) << 1) ^ (((state & m.hi1) >> 7) * 0x1B)

    @classmethod
    def _mix_columns(cls, state: int, m: _SwarMasks) -> int:
        r1 = cls._rot1(state, m)
        return cls._xtime(state ^ r1, m) ^ r1 ^ cls._rot2(state, m) ^ cls._rot3(state, m)

    @classmethod
    def _inv_mix_columns(cls, state: int, m: _SwarMasks) -> int:
        x2 = cls._xtime(state, m)
        x4 = cls._xtime(x2, m)
        x8 = cls._xtime(x4, m)
        e = x8 ^ x4 ^ x2      # 14·a
        f = x8 ^ x2 ^ state   # 11·a
        g = x8 ^ x4 ^ state   # 13·a
        h = x8 ^ state        # 9·a
        return e ^ cls._rot1(f, m) ^ cls._rot2(g, m) ^ cls._rot3(h, m)

    # -- core passes --------------------------------------------------------

    def _encrypt_int(
        self, data: bytes, rk_rep: list[int], n_blocks: int
    ) -> bytes:
        """Encrypt *data* given per-round replicated round-key integers."""
        m = self._masks_for(n_blocks)
        length = len(data)
        rounds = len(rk_rep) - 1
        state = int.from_bytes(data, "big") ^ rk_rep[0]
        for r in range(1, rounds):
            state = int.from_bytes(
                state.to_bytes(length, "big").translate(_SBOX_TABLE), "big"
            )
            state = self._shift_rows(state, m)
            state = self._mix_columns(state, m)
            state ^= rk_rep[r]
        state = int.from_bytes(
            state.to_bytes(length, "big").translate(_SBOX_TABLE), "big"
        )
        state = self._shift_rows(state, m)
        state ^= rk_rep[rounds]
        return state.to_bytes(length, "big")

    def _decrypt_int(
        self, data: bytes, rk_rep: list[int], n_blocks: int
    ) -> bytes:
        """Decrypt *data* given per-round replicated round-key integers."""
        m = self._masks_for(n_blocks)
        length = len(data)
        rounds = len(rk_rep) - 1
        state = int.from_bytes(data, "big") ^ rk_rep[rounds]
        for r in range(rounds - 1, 0, -1):
            state = self._inv_shift_rows(state, m)
            state = int.from_bytes(
                state.to_bytes(length, "big").translate(_INV_SBOX_TABLE), "big"
            )
            state ^= rk_rep[r]
            state = self._inv_mix_columns(state, m)
        state = self._inv_shift_rows(state, m)
        state = int.from_bytes(
            state.to_bytes(length, "big").translate(_INV_SBOX_TABLE), "big"
        )
        state ^= rk_rep[0]
        return state.to_bytes(length, "big")

    def _replicated_round_keys(self, key: bytes, n_blocks: int) -> list[int]:
        return [
            int.from_bytes(rk * n_blocks, "big") for rk in self._round_key_bytes(key)
        ]

    # -- public API ---------------------------------------------------------

    def encrypt_ecb(self, key: bytes, plaintext: bytes) -> bytes:
        _require_aligned(plaintext, "plaintext")
        _validate_key_len(len(key))
        if not plaintext:
            return b""
        n_blocks = len(plaintext) // BLOCK_SIZE
        return self._encrypt_int(
            plaintext, self._replicated_round_keys(key, n_blocks), n_blocks
        )

    def decrypt_ecb(self, key: bytes, ciphertext: bytes) -> bytes:
        _require_aligned(ciphertext, "ciphertext")
        _validate_key_len(len(key))
        if not ciphertext:
            return b""
        n_blocks = len(ciphertext) // BLOCK_SIZE
        return self._decrypt_int(
            ciphertext, self._replicated_round_keys(key, n_blocks), n_blocks
        )

    def _many(self, keys: Sequence[bytes], data: bytes, *, encrypt: bool) -> list[bytes]:
        """One SWAR pass over ``data`` replicated under every key.

        Keys of equal length share one packed buffer (same round count);
        mixed lengths are grouped and processed per group, results
        scattered back into input order.
        """
        _require_aligned(data, "plaintext" if encrypt else "ciphertext")
        results: list[bytes | None] = [None] * len(keys)
        if not keys:
            return []
        by_len: dict[int, list[int]] = {}
        for i, key in enumerate(keys):
            _validate_key_len(len(key))
            by_len.setdefault(len(key), []).append(i)
        blocks_per_key = len(data) // BLOCK_SIZE
        size = len(data)
        for indices in by_len.values():
            group = [keys[i] for i in indices]
            if not data:
                for i in indices:
                    results[i] = b""
                continue
            n_blocks = blocks_per_key * len(group)
            schedules = self._schedules_for(group)
            rk_rep = [
                int.from_bytes(
                    b"".join(rks[r] * blocks_per_key for rks in schedules), "big"
                )
                for r in range(len(schedules[0]))
            ]
            packed = data * len(group)
            out = (
                self._encrypt_int(packed, rk_rep, n_blocks)
                if encrypt
                else self._decrypt_int(packed, rk_rep, n_blocks)
            )
            for slot, i in enumerate(indices):
                results[i] = out[slot * size : (slot + 1) * size]
        return results  # type: ignore[return-value]

    def seal_many(self, keys: Sequence[bytes], plaintext: bytes) -> list[bytes]:
        return self._many(keys, plaintext, encrypt=True)

    def open_many(self, keys: Sequence[bytes], ciphertext: bytes) -> list[bytes]:
        return self._many(keys, ciphertext, encrypt=False)

    def sha256(self, data: bytes) -> bytes:
        return hashlib.sha256(data).digest()


def _require_aligned(data: bytes, kind: str) -> None:
    if len(data) % BLOCK_SIZE:
        raise ValueError(f"ECB requires block-aligned {kind}")


def _validate_key_len(key_len: int) -> None:
    if key_len not in _ROUNDS_BY_KEY_LEN:
        raise ValueError(f"AES key must be 16/24/32 bytes, got {key_len}")


# -- registry ---------------------------------------------------------------

_BACKENDS: dict[str, CryptoBackend] = {
    PureBackend.name: PureBackend(),
    TablesBackend.name: TablesBackend(),
}
_current: CryptoBackend = _BACKENDS[DEFAULT_BACKEND]


def available_backends() -> tuple[str, ...]:
    """Names of the registered backends (stable order)."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str) -> CryptoBackend:
    """Look up a backend by name; raises ``ValueError`` on unknown names."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown crypto backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


def current_backend() -> CryptoBackend:
    """The backend the protocol hot path currently routes through."""
    return _current


def set_backend(name_or_backend: str | CryptoBackend) -> CryptoBackend:
    """Select the process-wide backend; returns the previous one."""
    global _current
    previous = _current
    if isinstance(name_or_backend, CryptoBackend):
        _current = name_or_backend
    else:
        _current = get_backend(name_or_backend)
    return previous


@contextmanager
def use_backend(name_or_backend: str | CryptoBackend):
    """Temporarily select a backend (benchmarks, A/B comparisons, tests)."""
    previous = set_backend(name_or_backend)
    try:
        yield _current
    finally:
        set_backend(previous)
