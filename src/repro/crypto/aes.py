"""Pure-Python AES block cipher (FIPS-197).

The paper's mechanism seals the friending request with AES-256 keyed by the
profile key.  The execution environment has no third-party crypto library,
so this module implements the full Rijndael cipher from the specification:
S-box construction from the GF(2^8) inverse, key expansion for 128/192/256
bit keys, and the round transformations.  Correctness is pinned against the
FIPS-197 appendix vectors in ``tests/crypto/test_aes.py``.

Performance notes: encryption uses the classic 8-bit table approach with
Python-level loops.  It is orders of magnitude slower than hardware AES but
still orders of magnitude *faster* than the 1024/2048-bit modular
exponentiations the asymmetric baselines need, so the paper's headline
comparison (Tables IV, V, VII) is preserved in shape.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = [
    "AES",
    "BLOCK_SIZE",
    "configure_schedule_cache",
    "schedule_cache_stats",
]

BLOCK_SIZE = 16

_ROUNDS_BY_KEY_LEN = {16: 10, 24: 12, 32: 14}

# Bounded LRU of expanded key schedules.  Trial decryption retries the same
# handful of keys thousands of times per friending episode (the initiator
# opens every reply element under one x; popular profiles repeat candidate
# keys across participants), so skipping re-expansion is a large share of
# the symmetric-side cost.  Round keys are never mutated after expansion,
# so sharing them between cipher instances is safe.
_SCHEDULE_CACHE: OrderedDict[bytes, list[list[int]]] = OrderedDict()
_SCHEDULE_CACHE_MAX = 1024
_SCHEDULE_HITS = 0
_SCHEDULE_MISSES = 0


def configure_schedule_cache(maxsize: int) -> None:
    """Resize the shared key-schedule LRU; ``0`` disables caching entirely."""
    global _SCHEDULE_CACHE_MAX, _SCHEDULE_HITS, _SCHEDULE_MISSES
    if maxsize < 0:
        raise ValueError("cache size must be >= 0")
    _SCHEDULE_CACHE_MAX = maxsize
    _SCHEDULE_CACHE.clear()
    _SCHEDULE_HITS = 0
    _SCHEDULE_MISSES = 0


def schedule_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of the key-schedule LRU (for benchmarks)."""
    return {
        "hits": _SCHEDULE_HITS,
        "misses": _SCHEDULE_MISSES,
        "size": len(_SCHEDULE_CACHE),
        "maxsize": _SCHEDULE_CACHE_MAX,
    }


def _build_sbox() -> tuple[list[int], list[int]]:
    """Construct the AES S-box and its inverse from first principles.

    The S-box is the multiplicative inverse in GF(2^8) (modulo the Rijndael
    polynomial x^8+x^4+x^3+x+1) followed by the specified affine transform.
    """
    # Multiplicative inverse table via exp/log over generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 in GF(2^8)
        x ^= (x << 1) ^ (0x1B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    def inverse(b: int) -> int:
        if b == 0:
            return 0
        return exp[255 - log[b]]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for b in range(256):
        q = inverse(b)
        # affine transform: q ^ rot(q,1) ^ rot(q,2) ^ rot(q,3) ^ rot(q,4) ^ 0x63
        s = q
        for shift in range(1, 5):
            s ^= ((q << shift) | (q >> (8 - shift))) & 0xFF
        s ^= 0x63
        sbox[b] = s
        inv_sbox[s] = b
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """Multiply two bytes in GF(2^8)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# Precomputed multiplication tables for MixColumns / InvMixColumns.
_MUL2 = [_gmul(b, 2) for b in range(256)]
_MUL3 = [_gmul(b, 3) for b in range(256)]
_MUL9 = [_gmul(b, 9) for b in range(256)]
_MUL11 = [_gmul(b, 11) for b in range(256)]
_MUL13 = [_gmul(b, 13) for b in range(256)]
_MUL14 = [_gmul(b, 14) for b in range(256)]

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_xtime(_RCON[-1]))


class AES:
    """AES block cipher over 16-byte blocks.

    Parameters
    ----------
    key:
        16, 24 or 32 bytes selecting AES-128, AES-192 or AES-256.

    The object exposes :meth:`encrypt_block` / :meth:`decrypt_block`; chaining
    modes live in :mod:`repro.crypto.modes`.
    """

    def __init__(self, key: bytes):
        global _SCHEDULE_HITS, _SCHEDULE_MISSES
        if len(key) not in _ROUNDS_BY_KEY_LEN:
            raise ValueError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key = bytes(key)
        self.rounds = _ROUNDS_BY_KEY_LEN[len(key)]
        if _SCHEDULE_CACHE_MAX:
            cached = _SCHEDULE_CACHE.get(self.key)
            if cached is not None:
                _SCHEDULE_CACHE.move_to_end(self.key)
                _SCHEDULE_HITS += 1
                self._round_keys = cached
                return
            _SCHEDULE_MISSES += 1
            self._round_keys = self._expand_key(self.key)
            _SCHEDULE_CACHE[self.key] = self._round_keys
            while len(_SCHEDULE_CACHE) > _SCHEDULE_CACHE_MAX:
                _SCHEDULE_CACHE.popitem(last=False)
        else:
            self._round_keys = self._expand_key(self.key)

    def _expand_key(self, key: bytes) -> list[list[int]]:
        """FIPS-197 key schedule, returning one 16-byte list per round key."""
        nk = len(key) // 4
        nr = self.rounds
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (nr + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        round_keys = []
        for r in range(nr + 1):
            rk = []
            for w in words[4 * r : 4 * r + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    @staticmethod
    def _add_round_key(state: list[int], rk: list[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: list[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: list[int]) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(s: list[int]) -> None:
        # State is column-major: byte (row r, col c) at index 4*c + r.
        s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
        s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
        s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]

    @staticmethod
    def _inv_shift_rows(s: list[int]) -> None:
        s[5], s[9], s[13], s[1] = s[1], s[5], s[9], s[13]
        s[10], s[14], s[2], s[6] = s[2], s[6], s[10], s[14]
        s[15], s[3], s[7], s[11] = s[3], s[7], s[11], s[15]

    @staticmethod
    def _mix_columns(s: list[int]) -> None:
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = s[c], s[c + 1], s[c + 2], s[c + 3]
            s[c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            s[c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            s[c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            s[c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]

    @staticmethod
    def _inv_mix_columns(s: list[int]) -> None:
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = s[c], s[c + 1], s[c + 2], s[c + 3]
            s[c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            s[c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            s[c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            s[c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for r in range(1, self.rounds):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[r])
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.rounds])
        for r in range(self.rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[r])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
