"""Deterministic HMAC-DRBG for reproducible protocol runs.

Every stochastic component in the repository (nonce generation in tests,
synthetic dataset sampling, hint-matrix randomness in deterministic mode)
can be driven from this DRBG so that experiments are bit-reproducible from
a seed.  The construction follows NIST SP 800-90A HMAC_DRBG with SHA-256.
"""

from __future__ import annotations

from repro.crypto.hashes import HASH_BYTES, hmac_sha256

__all__ = ["HmacDrbg"]


class HmacDrbg:
    """NIST SP 800-90A HMAC_DRBG (SHA-256), without reseed counters.

    This generator is for *reproducibility*, not for production entropy;
    protocol code paths default to ``os.urandom`` unless a DRBG is injected.
    """

    def __init__(self, seed: bytes | int):
        if isinstance(seed, int):
            seed = seed.to_bytes((max(seed.bit_length(), 1) + 7) // 8, "big")
        self._key = b"\x00" * HASH_BYTES
        self._value = b"\x01" * HASH_BYTES
        self._update(seed)

    def _update(self, provided: bytes = b"") -> None:
        self._key = hmac_sha256(self._key, self._value + b"\x00" + provided)
        self._value = hmac_sha256(self._key, self._value)
        if provided:
            self._key = hmac_sha256(self._key, self._value + b"\x01" + provided)
            self._value = hmac_sha256(self._key, self._value)

    def generate(self, length: int) -> bytes:
        """Return *length* pseudorandom bytes."""
        output = bytearray()
        while len(output) < length:
            self._value = hmac_sha256(self._key, self._value)
            output.extend(self._value)
        self._update()
        return bytes(output[:length])

    def randint_bits(self, bits: int) -> int:
        """Uniform integer in [0, 2^bits)."""
        n_bytes = (bits + 7) // 8
        value = int.from_bytes(self.generate(n_bytes), "big")
        return value >> (n_bytes * 8 - bits)

    def randrange(self, start: int, stop: int | None = None) -> int:
        """Uniform integer in [start, stop) (or [0, start) with one arg)."""
        if stop is None:
            start, stop = 0, start
        if stop <= start:
            raise ValueError("empty range")
        span = stop - start
        bits = span.bit_length()
        while True:
            candidate = self.randint_bits(bits)
            if candidate < span:
                return start + candidate
