"""Encrypt-then-MAC authenticated encryption for the post-match channel.

After profile matching succeeds, the initiator and the matching user share
``x`` and ``y`` (Sec. III-F) and upgrade to an authenticated channel: the
sealed-bottle request itself deliberately uses *unauthenticated* encryption
(a wrong profile key must yield garbage rather than an error), but the
session traffic needs integrity against tampering and MITM.
"""

from __future__ import annotations

import os

from repro.crypto.hashes import hmac_sha256
from repro.crypto.kdf import hkdf
from repro.crypto.modes import decrypt_ctr, encrypt_ctr

__all__ = ["AuthenticationError", "AuthenticatedCipher"]

_MAC_LEN = 32
_NONCE_LEN = 8


class AuthenticationError(ValueError):
    """Raised when a ciphertext fails MAC verification."""


class AuthenticatedCipher:
    """AES-256-CTR + HMAC-SHA256 in encrypt-then-MAC composition.

    Separate encryption and MAC keys are derived from the supplied master
    secret with HKDF, so callers can hand in the raw shared secret
    (``x || y``) directly.
    """

    def __init__(self, master_secret: bytes):
        if not master_secret:
            raise ValueError("master secret must be non-empty")
        self._enc_key = hkdf(master_secret, info=b"sealed-bottle enc", length=32)
        self._mac_key = hkdf(master_secret, info=b"sealed-bottle mac", length=32)

    def encrypt(self, plaintext: bytes, nonce: bytes | None = None) -> bytes:
        """Encrypt and authenticate, returning ``nonce || ciphertext || tag``."""
        if nonce is None:
            nonce = os.urandom(_NONCE_LEN)
        if len(nonce) != _NONCE_LEN:
            raise ValueError(f"nonce must be {_NONCE_LEN} bytes")
        body = encrypt_ctr(self._enc_key, plaintext, nonce)
        tag = hmac_sha256(self._mac_key, nonce + body)
        return nonce + body + tag

    def decrypt(self, message: bytes) -> bytes:
        """Verify and decrypt a message produced by :meth:`encrypt`."""
        if len(message) < _NONCE_LEN + _MAC_LEN:
            raise AuthenticationError("message too short")
        nonce = message[:_NONCE_LEN]
        body = message[_NONCE_LEN:-_MAC_LEN]
        tag = message[-_MAC_LEN:]
        expected = hmac_sha256(self._mac_key, nonce + body)
        if not _constant_time_eq(tag, expected):
            raise AuthenticationError("MAC verification failed")
        return decrypt_ctr(self._enc_key, body, nonce)


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0
