"""Operation counters matching the paper's cost-model vocabulary.

Table III expresses protocol cost in named primitive operations.  The core
and baseline implementations accept an :class:`OpCounter` and increment the
matching bucket at each primitive call, so measured counts can be compared
directly against the published formulas.

Symmetric (our protocol):
    ``H``   SHA-256 of one attribute;
    ``M``   one 256-bit-hash mod-p reduction;
    ``E``   one AES-256 encryption;
    ``D``   one AES-256 decryption;
    ``MUL256`` / ``CMP256``  256-bit multiply / compare (hint solving).

Asymmetric (baselines):
    ``M1`` 24-bit modular multiply, ``M2`` 1024-bit modular multiply,
    ``M3`` 2048-bit modular multiply, ``E2`` 1024-bit exponentiation,
    ``E3`` 2048-bit exponentiation.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["OpCounter", "NULL_COUNTER", "SYMMETRIC_OPS", "ASYMMETRIC_OPS"]

SYMMETRIC_OPS = ("H", "M", "E", "D", "MUL256", "CMP256")
ASYMMETRIC_OPS = ("M1", "M2", "M3", "E2", "E3")


class OpCounter:
    """Mutable tally of named primitive operations.

    Counters are truthy; the shared :data:`NULL_COUNTER` is falsy.  Hot
    loops guard instrumentation with the identity form
    ``if counter is not NULL_COUNTER: counter.add(...)`` -- a pointer
    compare (~14 ns) instead of a bound-method call (~34 ns), so the
    instrumented path costs nothing measurable when counting is off.
    Truthiness (``if counter:``) expresses the same contract but pays a
    ``__bool__`` method call, so it belongs outside per-primitive loops
    (see ``docs/performance.md`` for the measurements).
    """

    def __init__(self):
        self._counts: Counter[str] = Counter()

    def __bool__(self) -> bool:
        return True

    def add(self, op: str, n: int = 1) -> None:
        """Record *n* occurrences of operation *op*."""
        self._counts[op] += n

    def get(self, op: str) -> int:
        """Count recorded for *op* (0 if never seen)."""
        return self._counts.get(op, 0)

    def as_dict(self) -> dict[str, int]:
        """Snapshot of all non-zero counts."""
        return {k: v for k, v in self._counts.items() if v}

    def reset(self) -> None:
        """Zero all counters."""
        self._counts.clear()

    def merged(self, other: "OpCounter") -> "OpCounter":
        """A new counter holding the sum of self and *other*."""
        result = OpCounter()
        result._counts = self._counts + other._counts
        return result

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()) if v)
        return f"OpCounter({inner})"


class _NullCounter(OpCounter):
    """Counter that discards everything (the default when none is passed).

    Falsy, and a process-wide singleton (:data:`NULL_COUNTER`), so hot
    loops can short-circuit the ``add`` call with an identity compare.
    Pickling resolves back to the singleton (``__reduce__``), so objects
    carrying the default counter keep the zero-cost guard working after
    crossing a process boundary (``FriendingEngine.run_parallel``).
    """

    def __bool__(self) -> bool:
        return False

    def __reduce__(self) -> str:
        return "NULL_COUNTER"

    def add(self, op: str, n: int = 1) -> None:
        return None


NULL_COUNTER = _NullCounter()
