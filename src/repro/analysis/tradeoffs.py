"""Parameter-selection helpers: choosing the remainder prime p.

The paper observes (Sec. IV-B1) that p trades efficiency against privacy:
larger p excludes more non-candidates (each remainder carries log₂p bits
of the hash) but shrinks the dictionary-profiling search space
``(m/p)^{m_t}``.  These helpers make the trade-off explicit and recommend
the smallest p that keeps the expected candidate load under a target --
the direction the paper itself argues ("even a small p ... can
significantly reduce the number of candidate users").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.numbers import is_probable_prime

__all__ = ["PrimeChoice", "candidate_fraction", "security_bits", "recommend_prime"]


def candidate_fraction(p: int, m_t: int, theta: float) -> float:
    """Expected fraction of users passing the fast check: (1/p)^(m_t·θ)."""
    if p < 2 or m_t < 1 or not 0 < theta <= 1:
        raise ValueError("invalid parameters")
    return (1.0 / p) ** (m_t * theta)


def security_bits(dictionary_size: int, p: int, m_t: int) -> float:
    """log₂ of the dictionary-profiling work: m_t·(log₂m − log₂p)."""
    if dictionary_size < p:
        return 0.0
    return m_t * (math.log2(dictionary_size) - math.log2(p))


@dataclass(frozen=True)
class PrimeChoice:
    """A recommended prime with the quantities that justified it."""

    p: int
    candidate_fraction: float
    security_bits: float


def _next_prime(n: int) -> int:
    candidate = max(2, n)
    while not is_probable_prime(candidate):
        candidate += 1
    return candidate


def recommend_prime(
    m_t: int,
    theta: float,
    *,
    dictionary_size: int = 1 << 20,
    max_candidate_fraction: float = 0.05,
    min_security_bits: float = 60.0,
    p_ceiling: int = 100_003,
) -> PrimeChoice:
    """Smallest prime meeting the candidate-load target within the security floor.

    Raises ValueError when no prime satisfies both constraints -- the caller
    must then relax the candidate-load target (favouring privacy), exactly
    the judgement call the paper leaves to the initiator.
    """
    p = _next_prime(m_t + 1)  # p must exceed m_t (Sec. III-C1)
    while p <= p_ceiling:
        fraction = candidate_fraction(p, m_t, theta)
        bits = security_bits(dictionary_size, p, m_t)
        if bits < min_security_bits:
            break  # growing p further only weakens security more
        if fraction <= max_candidate_fraction:
            return PrimeChoice(p=p, candidate_fraction=fraction, security_bits=bits)
        p = _next_prime(p + 1)
    raise ValueError(
        "no prime satisfies both the candidate-load target and the security floor; "
        "relax max_candidate_fraction or lower min_security_bits"
    )
