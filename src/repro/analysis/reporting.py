"""Plain-text table/series rendering for the benchmark harness.

Every bench regenerates one paper table or figure; these helpers print them
in a uniform, diff-friendly format that EXPERIMENTS.md quotes verbatim.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "render_series", "format_quantity"]


def format_quantity(value: object) -> str:
    """Human-friendly formatting for table cells."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def render_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an ASCII table with a title banner."""
    cells = [[format_quantity(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} ==", " | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(title: str, x_label: str, xs: Sequence[object], series: dict[str, Sequence[object]]) -> str:
    """Render one figure's data series as a table with the x axis first."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [values[i] for values in series.values()])
    return render_table(title, headers, rows)
