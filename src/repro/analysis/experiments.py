"""Config-driven experiment runner: ScenarioSpec sweeps over the engine.

Table VII-style comparisons used to mean hand-running individual
``bench_*`` scripts.  This module replaces that with a declarative
pipeline:

1. A :class:`ScenarioSpec` describes one city-scale friending scenario —
   population size, protocol (1/2/3), attacker mix, mobility model and
   episode arrival rate — and validates itself on construction.
2. :func:`load_plan` reads a JSON file holding either a single spec or a
   ``base`` + ``sweep`` parameter grid, and expands the grid into the
   cartesian product of concrete specs.
3. :func:`run_scenario` builds the population over a
   :func:`~repro.network.topology.SpatialGrid`-backed topology, runs the
   :class:`~repro.network.engine.FriendingEngine`, and emits one JSON
   record per scenario in the same shape as
   ``benchmarks/bench_engine_throughput.py``'s ``PERF_RECORD``.
4. :func:`run_plan` sweeps every spec and writes two artifacts: a JSON
   file of records and a rendered markdown report.

Determinism: everything a record reports except the ``wall_seconds`` /
``topology_seconds`` timings and the byte counts contributed by forged
attacker replies is a pure function of the spec (the spec's ``seed``
drives population, placement, mobility and protocol RNGs).  Attacker
*counts* are deterministic too; only the random bytes inside forged
elements vary.  All simulated times are milliseconds (``*_ms``);
throughput is episodes per simulated second.
"""

from __future__ import annotations

import itertools
import json
import random
import time
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Mapping

from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant, Reply
from repro.crypto.backend import available_backends, use_backend
from repro.network.channel_backend import current_channel_backend
from repro.network.channel_model import CHANNEL_VERSIONS, ChannelModel
from repro.network.churn import (
    SCENARIO_CHURN_SLEEP_MS,
    ChurnModel,
    ChurnRunner,
    ChurnSpec,
)
from repro.network.engine import (
    DEFAULT_RETRANSMIT_TIMEOUT_MS,
    EpisodeSpec,
    FriendingEngine,
)
from repro.network.faults import compile_campaign, load_fault_plan
from repro.network.mobility import RandomWaypoint, StaticPlacement
from repro.network.profiles import load_profile
from repro.network.regions import RegionShardedEngine
from repro.network.reliability import load_reliability_mode
from repro.network.simulator import AdHocNetwork

__all__ = [
    "SpecError",
    "ScenarioSpec",
    "ExperimentPlan",
    "churn_horizon",
    "churn_runner_for",
    "load_plan",
    "run_scenario",
    "run_plan",
    "render_markdown_report",
    "write_artifacts",
    "MOBILITY_MODELS",
    "ATTACKER_KINDS",
]

MOBILITY_MODELS = ("static", "random_waypoint")
ATTACKER_KINDS = ("cheating", "flooder")

_SWEEPABLE = (
    "nodes", "protocol", "episodes", "arrival_rate_per_s", "mobility",
    "radio_radius", "refresh_interval_ms", "communities",
    "tags_per_community", "seed", "until_ms", "backend", "workers",
    "regions", "loss_rate", "dup_rate", "reorder_rate", "corrupt_rate",
    "jitter_ms", "retries", "channel_version", "reliability",
    "retransmit_timeout_ms", "profile", "churn_rate", "churn_crash_rate",
    "fault_plan",
)


class SpecError(ValueError):
    """A scenario spec failed validation; the message names the field."""


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative friending scenario for the experiment runner.

    Fields and units
    ----------------
    name:
        Label used in records, reports and artifact names.
    nodes:
        Population size (radio nodes; every node is a phone).
    protocol:
        Paper protocol id — 1, 2 or 3 (Sec. III-E reply disciplines).
    episodes:
        Concurrent friending episodes launched into the one network.
    arrival_rate_per_s:
        Episode arrival rate in episodes per simulated second; the engine
        staggers launches ``1000 / rate`` simulated ms apart.
    mobility:
        ``"static"`` (fixed uniform placement) or ``"random_waypoint"``.
    radio_radius:
        Radio range as a fraction of the city's side length; expected
        degree is ``nodes · π · radius²``.
    refresh_interval_ms:
        Optional mid-run topology refresh period in simulated ms; requires
        ``mobility="random_waypoint"``.
    attackers:
        Attacker mix, mapping kind → population fraction.  ``"cheating"``
        nodes forge match claims with random keys (rejected by the ACK
        check); ``"flooder"`` nodes send oversized acknowledge sets
        (rejected unopened by the cardinality threshold).  Fractions must
        sum to at most 1.
    communities / tags_per_community:
        Honest profiles are split into interest communities (node *i*
        belongs to ``i mod communities``).  Each episode's initiator
        requests *its own node's* community tags; initiators are spread
        through the population at stride ``nodes // episodes``, so
        episode *e* requests community
        ``(e * stride mod nodes) mod communities``.
    seed:
        Master seed; see the module docstring for what it pins down.
    until_ms:
        Optional hard stop on the simulated clock.
    backend:
        Crypto backend the run measures -- ``"tables"`` (batched, the
        default) or ``"pure"`` (the per-block reference).  Recorded in
        the emitted JSON so perf records name the backend they measured.
    workers:
        Worker processes for the engine.  ``1`` runs every episode in
        one event queue; ``> 1`` shards episodes across processes via
        :meth:`~repro.network.engine.FriendingEngine.run_parallel`
        (incompatible with ``refresh_interval_ms``).
    regions:
        Spatial shards for the engine.  ``1`` (default) keeps the single
        calendar queue; ``> 1`` partitions the city into that many
        contiguous regions and runs the flood through
        :class:`~repro.network.regions.RegionShardedEngine` — results
        are byte-identical to ``regions=1`` by construction, so this is
        a pure performance knob.  Incompatible with ``workers > 1``
        (pick one sharding axis).
    loss_rate / dup_rate / reorder_rate / corrupt_rate / jitter_ms:
        The per-hop :class:`~repro.network.channel_model.ChannelModel`
        every frame passes through: probability that a transmitted frame
        copy is lost / duplicated by the link layer / held back long
        enough to be overtaken / has one bit flipped in flight, plus
        uniform extra latency in ``[0, jitter_ms]`` simulated ms.  All
        default to the perfect channel.  Channel decisions hash from
        ``(seed, flow, link, seq)``, so a lossy run is reproducible from
        the spec alone and sweeps stay deterministic.
    channel_version:
        Fate-derivation plane of the channel model: ``1`` (the scratch-MT
        reference, default) or ``2`` (the counter-mode keystream; same
        rates, different -- equally valid -- drawn fates, and a much
        cheaper hot path).  Part of the determinism contract, so it is
        validated, sweepable and emitted in every record; a recorded run
        only reproduces under the version that produced it
        (``docs/wire_format.md`` has the policy).
    retries:
        Initiator-side retransmission budget: how many fresh flood waves
        the origin may launch for a request still unanswered after the
        engine's retransmission timeout.  ``0`` (default) is single-shot.
    retransmit_timeout_ms:
        Base retransmission timeout in simulated ms (how long the origin
        waits before spending one unit of the ``retries`` budget); the
        reliability mode's backoff scales it per wave.
    reliability:
        Named reliability mode deciding how the retry budget is spent:
        ``"simple"`` (blind re-floods, the byte-frozen default),
        ``"stage"`` (escalating backoff), ``"window"`` (segmented replies
        with selective segment retransmission) or ``"window_fec"``
        (segmented replies with XOR parity recovery, no waves).  See
        ``docs/reliability.md``.
    profile:
        Optional name of a built-in scenario profile
        (:mod:`repro.network.profiles`).  The profile's settings become
        the spec's defaults; any field given explicitly wins.  Recorded
        for provenance.
    churn_rate / churn_crash_rate:
        Open-world churn, in events per simulated second.  ``churn_rate``
        splits evenly into arrivals and graceful departures;
        ``churn_crash_rate`` adds crashes (volatile state lost).  Any
        non-zero value routes the run through the engine's incremental
        ``begin``/``step`` plane driven by a
        :class:`~repro.network.churn.ChurnRunner`; departed nodes wake
        after :data:`~repro.network.churn.SCENARIO_CHURN_SLEEP_MS`.  The
        schedule is a counter-mode function of ``(seed, spec)`` alone, so
        churn-enabled runs stay reproducible and sharded == sequential.
        Zero (the default) keeps the closed-world ``run_staggered`` path
        byte for byte.  Incompatible with ``refresh_interval_ms`` and
        ``workers > 1``.
    fault_plan:
        Optional name of a registered fault campaign
        (:mod:`repro.network.faults`): timed initiator crashes,
        blackouts, session-table pressure or region-worker restarts
        applied at fractions of the run horizon.  Implies the open-world
        path like churn does.
    """

    name: str = "scenario"
    nodes: int = 100
    protocol: int = 2
    episodes: int = 4
    arrival_rate_per_s: float = 20.0
    mobility: str = "static"
    radio_radius: float = 0.1
    refresh_interval_ms: int | None = None
    attackers: Mapping[str, float] = field(default_factory=dict)
    communities: int = 8
    tags_per_community: int = 3
    seed: int = 0
    until_ms: int | None = None
    backend: str = "tables"
    workers: int = 1
    regions: int = 1
    loss_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    jitter_ms: int = 0
    retries: int = 0
    channel_version: int = 1
    retransmit_timeout_ms: int = DEFAULT_RETRANSMIT_TIMEOUT_MS
    reliability: str = "simple"
    profile: str | None = None
    churn_rate: float = 0.0
    churn_crash_rate: float = 0.0
    fault_plan: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise SpecError("name must be a non-empty string")
        if not isinstance(self.nodes, int) or self.nodes < 2:
            raise SpecError(f"nodes must be an integer >= 2, got {self.nodes!r}")
        if self.protocol not in (1, 2, 3):
            raise SpecError(
                f"protocol must be 1, 2 or 3 (Sec. III-E), got {self.protocol!r}"
            )
        if not isinstance(self.episodes, int) or self.episodes < 1:
            raise SpecError(f"episodes must be an integer >= 1, got {self.episodes!r}")
        if self.episodes > self.nodes:
            raise SpecError(
                f"episodes ({self.episodes}) cannot exceed nodes ({self.nodes})"
            )
        if not isinstance(self.arrival_rate_per_s, (int, float)) or not (
            self.arrival_rate_per_s > 0
        ):
            raise SpecError(
                "arrival_rate_per_s must be a positive number "
                f"(episodes per simulated second), got {self.arrival_rate_per_s!r}"
            )
        if self.mobility not in MOBILITY_MODELS:
            raise SpecError(
                f"unknown mobility model {self.mobility!r}; "
                f"choose one of {', '.join(MOBILITY_MODELS)}"
            )
        if not isinstance(self.radio_radius, (int, float)) or not 0 < self.radio_radius <= 1:
            raise SpecError(
                f"radio_radius must be in (0, 1] (fraction of the city side), "
                f"got {self.radio_radius!r}"
            )
        if self.refresh_interval_ms is not None:
            if self.mobility != "random_waypoint":
                raise SpecError("refresh_interval_ms requires mobility=random_waypoint")
            if not isinstance(self.refresh_interval_ms, int) or self.refresh_interval_ms <= 0:
                raise SpecError(
                    f"refresh_interval_ms must be a positive integer (simulated ms), "
                    f"got {self.refresh_interval_ms!r}"
                )
        if not isinstance(self.attackers, Mapping):
            raise SpecError("attackers must map attacker kind -> fraction")
        for kind, fraction in self.attackers.items():
            if kind not in ATTACKER_KINDS:
                raise SpecError(
                    f"unknown attacker kind {kind!r}; "
                    f"choose from {', '.join(ATTACKER_KINDS)}"
                )
            if not isinstance(fraction, (int, float)) or not 0 <= fraction <= 1:
                raise SpecError(
                    f"attacker fraction for {kind!r} must be in [0, 1], got {fraction!r}"
                )
        if sum(self.attackers.values()) > 1:
            raise SpecError("attacker fractions must sum to at most 1")
        if not isinstance(self.communities, int) or self.communities < 1:
            raise SpecError(f"communities must be an integer >= 1, got {self.communities!r}")
        if not isinstance(self.tags_per_community, int) or self.tags_per_community < 2:
            raise SpecError(
                f"tags_per_community must be an integer >= 2, got {self.tags_per_community!r}"
            )
        if self.until_ms is not None and (
            not isinstance(self.until_ms, int) or self.until_ms <= 0
        ):
            raise SpecError(f"until_ms must be a positive integer, got {self.until_ms!r}")
        if self.backend not in available_backends():
            raise SpecError(
                f"unknown crypto backend {self.backend!r}; "
                f"choose one of {', '.join(available_backends())}"
            )
        if not isinstance(self.workers, int) or self.workers < 1:
            raise SpecError(f"workers must be an integer >= 1, got {self.workers!r}")
        if not isinstance(self.regions, int) or self.regions < 1:
            raise SpecError(f"regions must be an integer >= 1, got {self.regions!r}")
        if self.workers > 1 and self.regions > 1:
            raise SpecError(
                "workers > 1 shards episodes and regions > 1 shards the city; "
                "the two sharding axes are mutually exclusive -- pick one"
            )
        for rate_field in ("loss_rate", "dup_rate", "reorder_rate", "corrupt_rate"):
            value = getattr(self, rate_field)
            if not isinstance(value, (int, float)) or not 0 <= value <= 1:
                raise SpecError(
                    f"{rate_field} must be a probability in [0, 1], got {value!r}"
                )
        if not isinstance(self.jitter_ms, int) or self.jitter_ms < 0:
            raise SpecError(
                f"jitter_ms must be a non-negative integer (simulated ms), "
                f"got {self.jitter_ms!r}"
            )
        if not isinstance(self.retries, int) or not 0 <= self.retries <= 255:
            raise SpecError(
                f"retries must be an integer in [0, 255] (one envelope byte "
                f"names the wave), got {self.retries!r}"
            )
        if self.channel_version not in CHANNEL_VERSIONS:
            raise SpecError(
                f"channel_version must be one of {CHANNEL_VERSIONS} "
                f"(1 = scratch-MT, 2 = counter-mode), got {self.channel_version!r}"
            )
        if (
            not isinstance(self.retransmit_timeout_ms, int)
            or self.retransmit_timeout_ms <= 0
        ):
            raise SpecError(
                f"retransmit_timeout_ms must be a positive integer (simulated ms), "
                f"got {self.retransmit_timeout_ms!r}"
            )
        if not isinstance(self.reliability, str):
            raise SpecError(
                f"reliability must be a mode name string, got {self.reliability!r}"
            )
        try:
            load_reliability_mode(self.reliability)
        except ValueError as exc:
            raise SpecError(str(exc)) from None
        if self.profile is not None:
            try:
                load_profile(self.profile)
            except ValueError as exc:
                raise SpecError(str(exc)) from None
        if self.workers > 1 and self.refresh_interval_ms is not None:
            raise SpecError(
                "workers > 1 shards episodes across processes and cannot apply "
                "mid-run topology refreshes; drop refresh_interval_ms or use workers=1"
            )
        for churn_field in ("churn_rate", "churn_crash_rate"):
            value = getattr(self, churn_field)
            if not isinstance(value, (int, float)) or value < 0:
                raise SpecError(
                    f"{churn_field} must be a non-negative number "
                    f"(events per simulated second), got {value!r}"
                )
        try:
            self.churn_spec()  # re-validate through ChurnSpec's own bounds
        except ValueError as exc:
            raise SpecError(str(exc)) from None
        if self.fault_plan is not None:
            try:
                load_fault_plan(self.fault_plan)
            except ValueError as exc:
                raise SpecError(str(exc)) from None
        if self.open_world:
            if self.refresh_interval_ms is not None:
                raise SpecError(
                    "churn/fault runs drive the open-world engine plane, which "
                    "is exclusive with mid-run topology refreshes; drop "
                    "refresh_interval_ms or the churn/fault fields"
                )
            if self.workers > 1:
                raise SpecError(
                    "churn/fault runs need one live engine to join/crash nodes "
                    "in; workers > 1 shards episodes across processes -- use "
                    "workers=1 (regions > 1 is fine)"
                )

    @property
    def open_world(self) -> bool:
        """True when the run must go through the begin/step churn plane."""
        return bool(self.churn_rate or self.churn_crash_rate or self.fault_plan)

    def churn_spec(self) -> ChurnSpec:
        """The :class:`~repro.network.churn.ChurnSpec` this scenario implies."""
        return ChurnSpec(
            join_rate_per_s=self.churn_rate / 2,
            leave_rate_per_s=self.churn_rate / 2,
            crash_rate_per_s=self.churn_crash_rate,
            sleep_ms=SCENARIO_CHURN_SLEEP_MS,
        )

    @property
    def arrival_ms(self) -> int:
        """Stagger between episode launches, in simulated milliseconds."""
        return max(1, round(1000 / self.arrival_rate_per_s))

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "ScenarioSpec":
        """Build and validate a spec from parsed JSON; unknown keys fail.

        A ``profile`` key pulls in that built-in profile's settings as
        defaults -- every key given explicitly in *raw* overrides the
        profile's value.
        """
        if not isinstance(raw, Mapping):
            raise SpecError(f"a scenario spec must be a JSON object, got {type(raw).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise SpecError(
                f"unknown spec field(s) {sorted(unknown)}; known fields: {sorted(known)}"
            )
        merged = dict(raw)
        profile_name = merged.get("profile")
        if profile_name is not None:
            try:
                profile = load_profile(profile_name)
            except ValueError as exc:
                raise SpecError(str(exc)) from None
            merged = {**profile.settings, **merged}
        return cls(**merged)

    @classmethod
    def from_profile(cls, profile_name: str, **overrides: Any) -> "ScenarioSpec":
        """Build a spec from a named built-in profile plus explicit overrides."""
        return cls.from_dict({"profile": profile_name, **overrides})

    def as_dict(self) -> dict[str, Any]:
        """JSON-serialisable view of the spec (for provenance in artifacts)."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["attackers"] = dict(self.attackers)
        return out


@dataclass(frozen=True)
class ExperimentPlan:
    """A named list of concrete scenario specs ready to run."""

    name: str
    specs: tuple[ScenarioSpec, ...]


def _expand_sweep(name: str, base: Mapping[str, Any], sweep: Mapping[str, Any]) -> ExperimentPlan:
    if not sweep:
        return ExperimentPlan(name=name, specs=(ScenarioSpec.from_dict({**base, "name": name}),))
    for key, values in sweep.items():
        if key not in _SWEEPABLE:
            raise SpecError(
                f"cannot sweep {key!r}; sweepable fields: {sorted(_SWEEPABLE)}"
            )
        if not isinstance(values, list) or not values:
            raise SpecError(f"sweep values for {key!r} must be a non-empty JSON list")
    keys = sorted(sweep)
    specs = []
    for combo in itertools.product(*(sweep[k] for k in keys)):
        assignment = dict(zip(keys, combo))
        label = ",".join(f"{k}={assignment[k]}" for k in keys)
        specs.append(ScenarioSpec.from_dict({**base, **assignment, "name": f"{name}/{label}"}))
    return ExperimentPlan(name=name, specs=tuple(specs))


def load_plan(source: str | Path | Mapping[str, Any]) -> ExperimentPlan:
    """Load an experiment plan from a JSON file path or a parsed mapping.

    Two layouts are accepted (see ``docs/experiments.md``):

    - a single :class:`ScenarioSpec` object, or
    - ``{"name": ..., "base": {spec fields}, "sweep": {field: [values]}}``,
      which expands into the cartesian product of the sweep lists.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        try:
            raw = json.loads(path.read_text())
        except FileNotFoundError:
            raise SpecError(f"spec file not found: {path}") from None
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec file {path} is not valid JSON: {exc}") from None
    else:
        raw = source
    if not isinstance(raw, Mapping):
        raise SpecError("the spec file must hold a JSON object")
    if "base" in raw or "sweep" in raw:
        extra = set(raw) - {"name", "base", "sweep"}
        if extra:
            raise SpecError(f"unknown top-level key(s) in sweep plan: {sorted(extra)}")
        name = raw.get("name", "experiment")
        base = raw.get("base", {})
        if not isinstance(base, Mapping):
            raise SpecError("base must be a JSON object of spec fields")
        return _expand_sweep(name, base, raw.get("sweep", {}))
    spec = ScenarioSpec.from_dict(raw)
    return ExperimentPlan(name=spec.name, specs=(spec,))


class _CheatingNode:
    """Engine-facing adapter: forge a match claim for every request seen.

    Reply elements are sealed under random keys, so the initiator's ACK
    verification rejects them (Sec. IV-A3) — the attack shows up as reply
    traffic and rejected replies, never as matches.
    """

    last_outcome = None

    def __init__(self, user_id: str, *, n_elements: int = 1):
        from repro.attacks.cheating import CheatingParticipant

        self._cheater = CheatingParticipant(user_id=user_id)
        self._n_elements = n_elements

    def handle_request(self, package, now_ms: int = 0) -> Reply | None:
        forged = self._cheater.forge_random_reply(package, n_elements=self._n_elements)
        return Reply(
            request_id=forged.request_id,
            responder_id=forged.responder_id,
            elements=forged.elements,
            sent_at_ms=now_ms,
        )


class _FloodingNode(_CheatingNode):
    """Dictionary-style flooder: oversized acknowledge sets.

    The element count deliberately exceeds the initiator's cardinality
    threshold, so replies are rejected *unopened* (Protocol 2/3 step 3)
    but still cost the network their transmission bytes.
    """

    def __init__(self, user_id: str, *, n_elements: int = 64):
        super().__init__(user_id, n_elements=n_elements)


def _largest_component_fraction(adjacency: Mapping[str, list[str]]) -> float:
    """Fraction of nodes in the largest connected component."""
    from repro.network.topology import _components

    if not adjacency:
        return 1.0
    return max(len(c) for c in _components(dict(adjacency))) / len(adjacency)


def _build_population(spec: ScenarioSpec, rng: random.Random):
    """Participants, attacker assignment and episode launches for *spec*."""
    node_ids = [f"n{i}" for i in range(spec.nodes)]

    def community_attrs(i: int) -> list[str]:
        community = i % spec.communities
        tags = [f"c{community}:tag{j}" for j in range(spec.tags_per_community)]
        return tags + [f"noise:n{i}"]

    # Episode initiators come first so attacker sampling can't claim them.
    stride = max(1, spec.nodes // spec.episodes)
    initiator_indices = [(e * stride) % spec.nodes for e in range(spec.episodes)]
    initiator_nodes = {node_ids[i] for i in initiator_indices}

    attacker_rng = random.Random(spec.seed + 0x5EED)
    pool = [n for n in node_ids if n not in initiator_nodes]
    assignment: dict[str, str] = {}
    for kind in ATTACKER_KINDS:
        fraction = spec.attackers.get(kind, 0)
        count = min(len(pool), round(fraction * spec.nodes))
        chosen = attacker_rng.sample(pool, count)
        for node in chosen:
            assignment[node] = kind
        pool = [n for n in pool if n not in assignment]

    participants: dict[str, Any] = {}
    for i, node in enumerate(node_ids):
        kind = assignment.get(node)
        if kind == "cheating":
            participants[node] = _CheatingNode(node)
        elif kind == "flooder":
            participants[node] = _FloodingNode(node)
        else:
            participants[node] = Participant(
                Profile(community_attrs(i), user_id=node, normalized=True), rng=rng
            )

    launches: list[tuple[str, Initiator]] = []
    for e, idx in enumerate(initiator_indices):
        community = idx % spec.communities
        tags = [f"c{community}:tag{j}" for j in range(spec.tags_per_community)]
        request = RequestProfile(
            necessary=[tags[0]], optional=tags[1:], beta=1, normalized=True
        )
        launches.append((
            node_ids[idx],
            Initiator(request, protocol=spec.protocol, rng=random.Random(spec.seed * 1000 + e)),
        ))
    attacker_counts = {
        kind: sum(1 for k in assignment.values() if k == kind) for kind in ATTACKER_KINDS
    }
    return node_ids, participants, launches, attacker_counts


@dataclass
class _PreparedScenario:
    """Everything :func:`run_scenario` builds before the engine runs.

    Factored out so tests (and the soak harness) can drive the identical
    population/topology/engine through the open-world ``begin``/``step``
    plane directly.
    """

    mobility: Any
    engine: FriendingEngine
    launches: list[tuple[str, Initiator]]
    attacker_counts: dict[str, int]
    mean_degree: float
    component_fraction: float
    warnings: list[str]
    topology_seconds: float


def _prepare_scenario(spec: ScenarioSpec) -> _PreparedScenario:
    """Build the population, topology, channel and engine for *spec*."""
    rng = random.Random(spec.seed)
    node_ids, participants, launches, attacker_counts = _build_population(spec, rng)

    if spec.mobility == "random_waypoint":
        mobility = RandomWaypoint(node_ids, seed=spec.seed)
    else:
        mobility = StaticPlacement(node_ids, seed=spec.seed)

    topo_start = time.perf_counter()
    adjacency = mobility.snapshot_topology(spec.radio_radius)
    topology_seconds = time.perf_counter() - topo_start

    # A mobility snapshot is deliberately *not* stitched into one component
    # (mid-run refreshes would undo any artificial links), so a sparse spec
    # can legitimately describe a fragmented city.  Record the connectivity
    # so such runs can never masquerade as healthy measurements.
    mean_degree = sum(len(v) for v in adjacency.values()) / max(1, len(adjacency))
    component_fraction = _largest_component_fraction(adjacency)
    warnings = []
    if component_fraction < 0.9:
        warnings.append(
            f"network is fragmented: largest component holds only "
            f"{component_fraction:.0%} of nodes (mean degree {mean_degree:.1f}); "
            f"floods cannot reach most of the population -- consider a larger "
            f"radio_radius (expected degree = nodes * pi * radius^2)"
        )

    channel = ChannelModel(
        drop_rate=spec.loss_rate,
        dup_rate=spec.dup_rate,
        reorder_rate=spec.reorder_rate,
        corrupt_rate=spec.corrupt_rate,
        jitter_ms=spec.jitter_ms,
        seed=spec.seed,
        version=spec.channel_version,
    )
    network = AdHocNetwork(adjacency, participants, channel=channel)
    engine_kwargs: dict[str, Any] = dict(
        retries=spec.retries,
        retransmit_timeout_ms=spec.retransmit_timeout_ms,
        reliability=spec.reliability,
    )
    if spec.refresh_interval_ms is not None:
        engine_kwargs.update(
            mobility=mobility,
            radio_radius=spec.radio_radius,
            refresh_interval_ms=spec.refresh_interval_ms,
        )
    if spec.regions > 1:
        engine = RegionShardedEngine(
            network,
            positions=mobility.positions(),
            regions=spec.regions,
            **engine_kwargs,
        )
    else:
        engine = FriendingEngine(network, **engine_kwargs)
    return _PreparedScenario(
        mobility=mobility,
        engine=engine,
        launches=launches,
        attacker_counts=attacker_counts,
        mean_degree=mean_degree,
        component_fraction=component_fraction,
        warnings=warnings,
        topology_seconds=topology_seconds,
    )


def _joiner_participant_factory(spec: ScenarioSpec):
    """Participants for churn arrivals: same community scheme, own seeds."""

    def factory(node_id: str, joiner_index: int) -> Participant:
        community = joiner_index % spec.communities
        tags = [f"c{community}:tag{j}" for j in range(spec.tags_per_community)]
        return Participant(
            Profile(tags + [f"noise:{node_id}"], user_id=node_id, normalized=True),
            rng=random.Random(spec.seed * 7919 + joiner_index),
        )

    return factory


def churn_horizon(spec: ScenarioSpec, engine: FriendingEngine) -> int:
    """The churn/fault window of a run: ``until_ms`` or the episodes' close.

    Called after ``begin()``: with no explicit ``until_ms`` the horizon is
    the natural close of the admitted episodes (their validity expiry).
    """
    return spec.until_ms if spec.until_ms is not None else engine.open_horizon_ms()


def churn_runner_for(
    spec: ScenarioSpec, prepared: _PreparedScenario, horizon_ms: int
) -> ChurnRunner:
    """The :class:`~repro.network.churn.ChurnRunner` a spec's run uses.

    Shared by :func:`run_scenario`, the soak harness and the golden tests
    so every surface applies the identical churn/fault schedule.
    """
    faults = []
    if spec.fault_plan is not None:
        faults = compile_campaign(load_fault_plan(spec.fault_plan), 0, horizon_ms)
    return ChurnRunner(
        prepared.engine,
        ChurnModel(spec.churn_spec(), spec.seed),
        positions=prepared.mobility.positions(),
        radio_radius=spec.radio_radius,
        participant_factory=_joiner_participant_factory(spec),
        faults=faults,
    )


def _run_open_world(spec: ScenarioSpec, prepared: _PreparedScenario):
    """Drive the prepared engine through begin/step under churn and faults.

    After the horizon the run drains to completion -- degraded episodes
    settle, they never wedge the queue.
    """
    engine = prepared.engine
    engine.begin([
        EpisodeSpec(initiator_node=node, initiator=initiator,
                    start_ms=i * spec.arrival_ms)
        for i, (node, initiator) in enumerate(prepared.launches)
    ])
    horizon = churn_horizon(spec, engine)
    churn_runner_for(spec, prepared, horizon).drive(0, horizon)
    return engine.finish()


def run_scenario(spec: ScenarioSpec) -> dict[str, Any]:
    """Run one scenario end to end and return its JSON record.

    The record carries the same measurement keys as
    ``benchmarks/bench_engine_throughput.py`` (``nodes``, ``episodes``,
    ``wall_seconds``, ``episodes_per_wall_sec``, ``episodes_per_sim_sec``,
    ``sim_duration_ms``, ``matches``, ``latency_p50_ms``,
    ``latency_p95_ms``, ``total_bytes``) plus scenario provenance,
    including the crypto ``backend`` and ``workers`` the run measured.
    """
    prepared = _prepare_scenario(spec)
    engine = prepared.engine
    launches = prepared.launches
    attacker_counts = prepared.attacker_counts
    mean_degree = prepared.mean_degree
    component_fraction = prepared.component_fraction
    warnings = prepared.warnings
    topology_seconds = prepared.topology_seconds

    with use_backend(spec.backend):
        start = time.perf_counter()
        if spec.open_world:
            result = _run_open_world(spec, prepared)
        else:
            result = engine.run_staggered(
                launches,
                arrival_ms=spec.arrival_ms,
                until_ms=spec.until_ms,
                workers=spec.workers,
            )
        wall_s = time.perf_counter() - start

    agg = result.aggregate
    rejected = sum(len(ep.initiator.rejected) for ep in result.episodes)
    matched_episodes = sum(1 for ep in result.episodes if ep.matches)
    return {
        "bench": "experiment",
        "scenario": spec.name,
        "spec": spec.as_dict(),
        "nodes": spec.nodes,
        "episodes": agg.episodes,
        "protocol": spec.protocol,
        "mobility": spec.mobility,
        "backend": spec.backend,
        "workers": spec.workers,
        "regions": spec.regions,
        "loss_rate": spec.loss_rate,
        "dup_rate": spec.dup_rate,
        "reorder_rate": spec.reorder_rate,
        "corrupt_rate": spec.corrupt_rate,
        "jitter_ms": spec.jitter_ms,
        "retries": spec.retries,
        "retransmit_timeout_ms": spec.retransmit_timeout_ms,
        "reliability": spec.reliability,
        "profile": spec.profile,
        "channel_version": spec.channel_version,
        # Backend choice is bit-transparent (pure == numpy, pinned by the
        # equivalence tests), so this is provenance for perf comparisons,
        # not part of the result's identity.  v1 has no backend seam.
        "channel_backend": (
            current_channel_backend().name if spec.channel_version == 2 else None
        ),
        "attackers": attacker_counts,
        "arrival_ms": spec.arrival_ms,
        "mean_degree": round(mean_degree, 2),
        "largest_component_fraction": round(component_fraction, 4),
        "warnings": warnings,
        "topology_seconds": round(topology_seconds, 4),
        "wall_seconds": round(wall_s, 4),
        "episodes_per_wall_sec": round(agg.episodes / wall_s, 2) if wall_s > 0 else 0.0,
        "episodes_per_sim_sec": round(agg.episodes_per_sim_sec, 2),
        "sim_duration_ms": agg.sim_duration_ms,
        "matches": agg.matches,
        "match_rate": round(matched_episodes / agg.episodes, 4) if agg.episodes else 0.0,
        "latency_p50_ms": agg.latency_p50_ms,
        "latency_p95_ms": agg.latency_p95_ms,
        "total_bytes": agg.total.total_bytes,
        "nodes_reached": agg.total.nodes_reached,
        "replies": agg.total.replies,
        "rejected_replies": rejected,
        "frames_sent": agg.total.frames_sent,
        "frames_dropped": agg.total.frames_dropped,
        "frames_duplicated": agg.total.frames_duplicated,
        "frames_corrupted": agg.total.frames_corrupted,
        "frames_rejected": agg.total.frames_rejected,
        "frame_bytes": agg.total.frame_bytes,
        "duplicate_replies": agg.total.duplicate_replies,
        "retransmissions": agg.total.retransmissions,
        "selective_retx": agg.total.selective_retx,
        "fec_recovered": agg.total.fec_recovered,
        "sessions_overflow": agg.total.sessions_overflow,
        "topology_refreshes": result.topology_refreshes,
        "churn_rate": spec.churn_rate,
        "churn_crash_rate": spec.churn_crash_rate,
        "fault_plan": spec.fault_plan,
        "nodes_joined": agg.total.nodes_joined,
        "nodes_left": agg.total.nodes_left,
        "nodes_crashed": agg.total.nodes_crashed,
        "orphaned_replies": agg.total.orphaned_replies,
        "degraded_episodes": agg.total.degraded_episodes,
        "region_restarts": result.region_restarts,
    }


def render_markdown_report(plan_name: str, records: list[dict[str, Any]]) -> str:
    """Render the sweep's records as a self-contained markdown report."""
    columns = [
        ("scenario", "scenario"),
        ("nodes", "nodes"),
        ("protocol", "proto"),
        ("mobility", "mobility"),
        ("backend", "backend"),
        ("regions", "regions"),
        ("loss_rate", "loss"),
        ("channel_version", "chan-v"),
        ("reliability", "mode"),
        ("retries", "retries"),
        ("churn_rate", "churn"),
        ("fault_plan", "faults"),
        ("nodes_crashed", "crashed"),
        ("degraded_episodes", "degraded"),
        ("episodes", "episodes"),
        ("matches", "matches"),
        ("match_rate", "match-rate"),
        ("frames_sent", "frames"),
        ("frames_dropped", "dropped"),
        ("retransmissions", "retx"),
        ("selective_retx", "sel-retx"),
        ("fec_recovered", "fec-rec"),
        ("episodes_per_sim_sec", "ep/sim-s"),
        ("latency_p50_ms", "p50 ms"),
        ("latency_p95_ms", "p95 ms"),
        ("total_bytes", "bytes"),
        ("topology_seconds", "topo s"),
        ("wall_seconds", "wall s"),
    ]
    lines = [
        f"# Experiment report: {plan_name}",
        "",
        f"{len(records)} scenario(s). Latencies are simulated milliseconds; "
        "throughput is episodes per simulated second; `topo s`/`wall s` are "
        "wall-clock build and run times.  `match-rate` is the fraction of "
        "episodes that verified at least one match; `frames`/`dropped`/`retx` "
        "count datagram-layer transmissions, channel losses and "
        "retransmission waves; `mode`/`sel-retx`/`fec-rec` name the "
        "reliability mode, selectively re-sent reply segments and "
        "parity-reconstructed elements (see docs/wire_format.md and "
        "docs/reliability.md).",
        "",
        "| " + " | ".join(label for _, label in columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for record in records:
        cells = []
        for key, _ in columns:
            value = record.get(key, "")
            cells.append(f"{value:g}" if isinstance(value, float) else str(value))
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    for record in records:
        attackers = {k: v for k, v in record.get("attackers", {}).items() if v}
        lines.append(
            f"- **{record['scenario']}** — {record['nodes_reached']} nodes reached, "
            f"{record['replies']} replies ({record['rejected_replies']} rejected), "
            f"{record['frames_sent']} frames sent "
            f"({record['frames_dropped']} dropped, "
            f"{record['frames_rejected']} rejected at decode), "
            f"{record['retransmissions']} retransmission waves, "
            f"{record['topology_refreshes']} topology refreshes, "
            f"mean degree {record['mean_degree']}"
            + (f", attackers {attackers}" if attackers else "")
            + "."
        )
        for warning in record.get("warnings", []):
            lines.append(f"  - ⚠️ {warning}")
    lines.append("")
    lines.append("<details><summary>Full JSON records</summary>")
    lines.append("")
    lines.append("```json")
    lines.append(json.dumps(records, indent=2))
    lines.append("```")
    lines.append("")
    lines.append("</details>")
    return "\n".join(lines) + "\n"


def write_artifacts(
    name: str,
    payload: Mapping[str, Any],
    markdown: str,
    out_dir: str | Path,
) -> tuple[Path, Path]:
    """Write the standard JSON + markdown artifact pair for a named run.

    Shared by the experiment sweep runner and the conformance harness so
    every reporting surface lands artifacts under the same naming scheme
    (``<name>.json`` + ``<name>.md``, slashes flattened).  Returns
    ``(json_path, markdown_path)``.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    safe_name = name.replace("/", "_")
    json_path = out / f"{safe_name}.json"
    md_path = out / f"{safe_name}.md"
    json_path.write_text(json.dumps(payload, indent=2))
    md_path.write_text(markdown)
    return json_path, md_path


def run_plan(
    source: str | Path | Mapping[str, Any],
    out_dir: str | Path,
    *,
    echo=None,
) -> tuple[Path, Path, list[dict[str, Any]]]:
    """Run every scenario in a plan; write the JSON + markdown artifacts.

    Returns ``(json_path, markdown_path, records)``.  *echo*, when given,
    receives one progress line per scenario.
    """
    plan = load_plan(source)
    records = []
    for spec in plan.specs:
        record = run_scenario(spec)
        records.append(record)
        if echo is not None:
            echo(
                f"[{len(records)}/{len(plan.specs)}] {spec.name}: "
                f"{record['matches']} matches, "
                f"{record['episodes_per_sim_sec']} ep/sim-s, "
                f"{record['wall_seconds']}s wall"
            )
            for warning in record["warnings"]:
                echo(f"    warning: {warning}")
    json_path, md_path = write_artifacts(
        plan.name,
        {"plan": plan.name, "records": records},
        render_markdown_report(plan.name, records),
        out_dir,
    )
    return json_path, md_path, records
