"""Measurement and reporting utilities for the evaluation harness."""

from repro.analysis.counters import OpCounter, NULL_COUNTER
from repro.analysis.reporting import render_table, render_series
from repro.analysis.tradeoffs import PrimeChoice, recommend_prime

__all__ = [
    "NULL_COUNTER",
    "OpCounter",
    "PrimeChoice",
    "recommend_prime",
    "render_series",
    "render_table",
]
