"""Measurement and reporting utilities for the evaluation harness."""

from repro.analysis.counters import OpCounter, NULL_COUNTER
from repro.analysis.reporting import render_table, render_series
from repro.analysis.tradeoffs import PrimeChoice, recommend_prime

_EXPERIMENT_EXPORTS = (
    "ExperimentPlan",
    "ScenarioSpec",
    "SpecError",
    "load_plan",
    "render_markdown_report",
    "run_plan",
    "run_scenario",
)


def __getattr__(name):
    # The experiment runner sits *above* the protocol stack (it drives the
    # engine), while the counters here sit below it; importing it eagerly
    # would close a cycle through repro.core, so resolve it on first use.
    if name in _EXPERIMENT_EXPORTS:
        from repro.analysis import experiments

        return getattr(experiments, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "NULL_COUNTER",
    "ExperimentPlan",
    "OpCounter",
    "PrimeChoice",
    "ScenarioSpec",
    "SpecError",
    "load_plan",
    "recommend_prime",
    "render_markdown_report",
    "render_series",
    "render_table",
    "run_plan",
    "run_scenario",
]
