"""Empirical privacy-protection-level evaluation (Tables I and II).

PPL levels (Def. 3): 0 = profile fully learnable, 1 = intersection
learnable, 2 = necessary attributes + threshold fact learnable, 3 =
nothing learnable.  Instead of asserting the paper's table, each cell is
*measured*: the corresponding protocol run (or attack) is executed and the
observer's actual knowledge is classified into a level.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.attacks.dictionary import DictionaryAttacker, ProbingInitiator
from repro.core.attributes import Profile, RequestProfile
from repro.core.entropy import AttributeDistribution, EntropyPolicy
from repro.core.protocols import Initiator, Participant

__all__ = ["PplCell", "evaluate_hbc_table", "evaluate_malicious_table", "PAPER_TABLE1"]

# Paper Table I for reference/assertion in the bench harness.
PAPER_TABLE1 = {
    ("Protocol 1", "A_I vs v_M"): "1",
    ("Protocol 1", "A_I vs v_U"): "3",
    ("Protocol 1", "A_M vs v_I"): "2",
    ("Protocol 1", "A_U vs v_I"): "3",
    ("Protocol 2", "A_I vs v_M"): "3",
    ("Protocol 2", "A_I vs v_U"): "3",
    ("Protocol 2", "A_M vs v_I"): "2",
    ("Protocol 2", "A_U vs v_I"): "3",
    ("Protocol 3", "A_I vs v_M"): "3",
    ("Protocol 3", "A_I vs v_U"): "3",
    ("Protocol 3", "A_M vs v_I"): "2",
    ("Protocol 3", "A_U vs v_I"): "3",
}


@dataclass(frozen=True)
class PplCell:
    """One measured table cell with the evidence behind the level."""

    protocol: str
    pair: str
    level: str
    evidence: str


def _scenario(protocol: int, seed: int = 7):
    """A canonical matching scenario: initiator, one match, one non-match."""
    rng = random.Random(seed)
    request = RequestProfile(
        necessary=["tag:alpha"],
        optional=["tag:beta", "tag:gamma", "tag:delta"],
        beta=2,
        normalized=True,
    )
    matching = Profile(
        ["tag:alpha", "tag:beta", "tag:gamma", "tag:zeta"], user_id="match", normalized=True
    )
    unmatching = Profile(["tag:eta", "tag:iota"], user_id="miss", normalized=True)
    initiator = Initiator(request, protocol=protocol, rng=rng)
    return request, initiator, matching, unmatching


def evaluate_hbc_table(seed: int = 7) -> list[PplCell]:
    """Measure Table I: honest-but-curious observers, all three protocols."""
    cells: list[PplCell] = []
    for protocol in (1, 2, 3):
        request, initiator, matching, unmatching = _scenario(protocol, seed)
        package = initiator.create_request(now_ms=0)
        matcher = Participant(matching)
        misser = Participant(unmatching)
        reply_match = matcher.handle_request(package, now_ms=1)
        reply_miss = misser.handle_request(package, now_ms=1)
        name = f"Protocol {protocol}"

        # (A_I, v_M): what the matching user learns about the request.
        outcome = matcher.last_outcome
        if protocol == 1 and outcome is not None and outcome.matched:
            cells.append(PplCell(name, "A_I vs v_M", "1",
                                 "confirmation verified: matcher knows its key was right, "
                                 "hence learns the intersection (owned request attributes)"))
        else:
            cells.append(PplCell(name, "A_I vs v_M", "3",
                                 "no confirmation: matcher cannot tell which candidate key "
                                 "(if any) was correct"))

        # (A_I, v_U): what an unmatching user learns about the request.
        miss_outcome = misser.last_outcome
        learned = miss_outcome is not None and miss_outcome.matched
        cells.append(PplCell(name, "A_I vs v_U", "3" if not learned else "0",
                             f"unmatching user candidate={bool(miss_outcome and miss_outcome.candidate)}, "
                             "decrypted nothing verifiable"))

        # (A_M, v_I): what the initiator learns about a matching replier.
        record = initiator.handle_reply(reply_match, now_ms=2) if reply_match else None
        if record is not None:
            cells.append(PplCell(name, "A_M vs v_I", "2",
                                 "verified ack: initiator learns the match owns the necessary "
                                 "attributes and >= beta optional ones (threshold fact)"))
        else:
            cells.append(PplCell(name, "A_M vs v_I", "3", "no verified reply arrived"))

        # (A_U, v_I): what the initiator learns about an unmatching user.
        if reply_miss is None:
            cells.append(PplCell(name, "A_U vs v_I", "3", "unmatching user never replied"))
        else:
            rec = initiator.handle_reply(reply_miss, now_ms=2)
            cells.append(PplCell(name, "A_U vs v_I", "3" if rec is None else "0",
                                 "reply failed verification" if rec is None else "reply verified (!)"))
    return cells


def evaluate_malicious_table(seed: int = 7, dictionary_extra: int = 40) -> list[PplCell]:
    """Measure Table II: dictionary-armed malicious participant/initiator.

    The worst case is modelled faithfully: the attacker's dictionary covers
    every attribute actually in use plus *dictionary_extra* decoys.
    """
    cells: list[PplCell] = []
    universe = [
        "tag:alpha", "tag:beta", "tag:gamma", "tag:delta",
        "tag:zeta", "tag:eta", "tag:iota",
    ] + [f"tag:decoy{i}" for i in range(dictionary_extra)]

    for protocol in (1, 2, 3):
        request, initiator, matching, unmatching = _scenario(protocol, seed)
        package = initiator.create_request(now_ms=0)
        name = f"Protocol {protocol}"

        # (A_I, v'_P): malicious participant with dictionary vs the request.
        attacker = DictionaryAttacker(universe)
        result = attacker.recover_request(package)
        if result.succeeded:
            cells.append(PplCell(name, "A_I vs v'_P", "0",
                                 f"request profile fully recovered in {result.guesses} guesses"))
        else:
            cells.append(PplCell(name, "A_I vs v'_P", "3",
                                 f"no oracle: {result.candidate_combinations} combinations "
                                 "remain indistinguishable"))

        # (A_M / A_U, v'_I): malicious initiator probing repliers.
        if protocol in (2, 3):
            distribution = AttributeDistribution.uniform({"tag": 1 << 16})
            policy = EntropyPolicy(distribution, phi=16.0) if protocol == 3 else None
            victim = Participant(matching, entropy_policy=policy)
            prober = ProbingInitiator(universe[:12], protocol=protocol)
            probe = prober.probe(victim)
            leaked = prober.leaked_attributes(matching, probe)
            if protocol == 3 and policy is not None:
                level = "phi" if len(leaked) <= 1 else "0"
                cells.append(PplCell(name, "A_M vs v'_I", level,
                                     f"entropy budget capped leakage at {len(leaked)} attribute(s)"))
            else:
                level = "2" if leaked else "3"
                cells.append(PplCell(name, "A_M vs v'_I", level,
                                     f"probe exposed {len(leaked)} owned attribute(s)"))
        else:
            cells.append(PplCell(name, "A_M vs v'_I", "2",
                                 "matching replier reveals threshold satisfaction by design"))

        # (A_U, v'_P): dictionary participant eavesdropping an unmatching user.
        misser = Participant(unmatching)
        reply_miss = misser.handle_request(package, now_ms=1)
        cells.append(PplCell(name, "A_U vs v'_P", "3",
                             "non-candidate sent nothing" if reply_miss is None
                             else "candidate reply observed (bounded leak)"))
    return cells
