"""Reproduction of *Message in a Sealed Bottle: Privacy Preserving Friending
in Social Networks* (Lan Zhang & Xiang-Yang Li, ICDCS 2013).

Package layout:

- :mod:`repro.core` -- the sealed-bottle mechanism: profile hashing,
  remainder vector, hint matrix, Protocols 1-3, secure channels, location
  privacy.
- :mod:`repro.crypto` -- from-scratch symmetric and big-number primitives.
- :mod:`repro.baselines` -- asymmetric-cryptosystem comparators (FNP04,
  FC10, DH-PSI-CA, Paillier dot product) and the Table III cost model.
- :mod:`repro.network` -- decentralized multi-hop MANET simulator.
- :mod:`repro.dataset` -- synthetic Tencent-Weibo-calibrated workloads.
- :mod:`repro.attacks` -- adversary implementations for the security evaluation.
- :mod:`repro.analysis` -- operation counters, PPL evaluation, reporting.
"""

__version__ = "1.0.0"

from repro.core import (
    Initiator,
    Participant,
    Profile,
    RequestProfile,
    SecureChannel,
)

__all__ = [
    "Initiator",
    "Participant",
    "Profile",
    "RequestProfile",
    "SecureChannel",
    "__version__",
]
