#!/usr/bin/env python3
"""Community discovery with a shared group key (paper Sec. III-F).

One broadcast finds *every* user whose profile clears the similarity
threshold; the sealed random number x doubles as the community key, so the
initiator can immediately address the whole discovered community over an
authenticated group channel -- no key server, no pairwise handshakes.

Run:  python examples/community_discovery.py
"""

import random

from repro.core import Initiator, Participant, RequestProfile, SecureChannel
from repro.dataset import WeiboGenerator


def main() -> None:
    rng = random.Random(99)

    # A synthetic Weibo-like population (see repro.dataset for calibration).
    users = WeiboGenerator(n_users=400, tag_vocabulary=600, seed=21).generate()
    print(f"Population: {len(users)} users, "
          f"mean {sum(len(u.tags) for u in users)/len(users):.1f} tags each")

    # The initiator looks for its own community: >= 60% tag overlap with a
    # seed member's interests.
    seed_user = users[0]
    request = RequestProfile.with_threshold(
        necessary=(),
        optional=[f"tag:{t}" for t in seed_user.tags],
        theta=0.6,
        normalized=True,
    )
    print(f"Request: {len(request)} interest tags, θ = {request.theta:.0%} "
          f"(at least {request.beta} shared)")

    initiator = Initiator(request, protocol=2, rng=rng, max_reply_elements=8)
    package = initiator.create_request(now_ms=0)

    ground_truth = 0
    for user in users:
        profile = user.profile()
        if request.matches(profile):
            ground_truth += 1
        participant = Participant(profile, rng=rng)
        reply = participant.handle_request(package, now_ms=1)
        if reply is not None:
            initiator.handle_reply(reply, now_ms=2)

    print(f"\nVerified community members: {len(initiator.matches)} "
          f"(plaintext ground truth: {ground_truth})")
    for record in initiator.matches[:10]:
        print(f"  {record.responder_id}")

    # Group channel: one key, everyone who matched can read.
    group = SecureChannel.for_group(initiator.secret.x)
    announcement = group.send(b"Welcome! Weekly meetup thread starts here.")
    print(f"\nGroup announcement: {len(announcement)} bytes, key derived from x")

    # Any member can decrypt with the x_j it recovered during matching.
    member = Participant(users[0].profile(), rng=rng)
    member.handle_request(package, now_ms=3)
    reply = member._pending_secrets.get(package.request_id, [])
    readable = 0
    for x_candidate, _ in reply:
        try:
            SecureChannel.for_group(x_candidate).receive(announcement)
            readable += 1
        except Exception:
            continue
    print(f"Seed member decrypts the announcement with "
          f"{readable}/{len(reply)} of its candidate keys")


if __name__ == "__main__":
    main()
