#!/usr/bin/env python3
"""Quickstart: private friending and secure chat in a dozen lines.

Alice wants to find someone who is into basketball and either an engineer
or living in NYC -- without revealing what she is looking for to anyone who
does not match, and without any key server.

Run:  python examples/quickstart.py
"""

from repro.core import Initiator, Participant, Profile, RequestProfile, SecureChannel


def main() -> None:
    # --- Alice builds her request: 1 necessary + 2-of-3 optional attributes.
    request = RequestProfile(
        necessary=["interest:basketball"],
        optional=["profession:engineer", "city:NYC", "music:jazz"],
        beta=2,
    )
    alice = Initiator(request, protocol=1)
    package = alice.create_request(now_ms=0)
    print(f"Alice broadcasts a {package.wire_size_bytes()}-byte sealed request "
          f"(threshold θ = {request.theta:.0%})")

    # --- Three strangers receive the broadcast.
    bob = Participant(Profile(
        ["interest:basketball", "profession:engineer", "city:NYC", "food:sushi"],
        user_id="bob",
    ))
    carol = Participant(Profile(
        ["interest:chess", "city:NYC"], user_id="carol",
    ))
    dave = Participant(Profile(
        ["interest:basketball", "music:classical"], user_id="dave",
    ))

    for stranger in (bob, carol, dave):
        reply = stranger.handle_request(package, now_ms=5)
        status = "replies (matched!)" if reply else "silently relays"
        print(f"  {stranger.profile.user_id}: {status}")
        if reply is not None:
            record = alice.handle_reply(reply, now_ms=10)
            assert record is not None
            print(f"  -> Alice verified {record.responder_id} "
                  f"(similarity {record.similarity}/{len(request)})")

    # --- A secure channel exists the moment the match is verified.
    match = alice.best_match()
    channel = SecureChannel(match.session_key)
    message = channel.send(b"Hey! Pickup game at the west court, 6pm?")
    print(f"Alice -> {match.responder_id}: {len(message)}-byte authenticated message")

    for key in bob.channel_keys(package.request_id):
        try:
            plaintext = SecureChannel(key).receive(message)
        except Exception:
            continue
        print(f"Bob reads: {plaintext.decode()}")
        break


if __name__ == "__main__":
    main()
