"""Reliability-mode sweep: what a match costs, mode by mode, under loss.

Runs ``examples/specs/reliability_city.json`` -- the lossy 10k-node city
(10% loss, 2-wave budget) -- once per reliability mode and prints the
match-rate-per-frame-byte table: blind re-floods (``simple``/``stage``)
buy reliability with whole-network byte multiplication, ``window``
re-sends only the missing reply segments, and ``window_fec`` recovers
lost elements from XOR parity without retransmitting at all (see
``docs/reliability.md``).

The sweep asserts the headline: at loss >= 0.1, ``window_fec`` beats
the ``retries=2`` blind re-flood on match rate per frame byte.  One
``PERF_RECORD`` line carries the verdict into ``BENCH_crypto.json``
via ``tools/bench_record.py`` (the perf-smoke CI wiring).

Equivalent CLI:

    sealed-bottle experiments run examples/specs/reliability_city.json

Everything is deterministic: frame, segment and parity fates all hash
from (seed, flow, link, seq), so re-running reproduces these numbers
exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.experiments import run_plan

SPEC = Path(__file__).parent / "specs" / "reliability_city.json"

#: Matches per frame megabyte -- the honest cost metric under loss.
#: (The ``match_rate`` record field is the fraction of episodes that
#: matched at all; on this dense city every mode saturates it at 1.0,
#: while the verified-match *count* is where the modes part ways.)
def _mrpmb(record: dict) -> float:
    return record["matches"] / (record["frame_bytes"] / 1e6)


def main() -> None:
    json_path, md_path, records = run_plan(SPEC, "results", echo=print)
    by_mode = {record["reliability"]: record for record in records}

    print()
    print("reliability modes on the lossy 10k city (loss=0.1, retries=2)")
    header = (
        f"{'mode':>10} | {'matches':>7} | {'frame MB':>8} | "
        f"{'matches/MB':>10} | {'retx':>5} | {'sel-retx':>8} | {'fec-rec':>7}"
    )
    print(header)
    print("-" * len(header))
    for record in records:
        print(
            f"{record['reliability']:>10} | {record['matches']:>7} | "
            f"{record['frame_bytes'] / 1e6:>8.1f} | "
            f"{_mrpmb(record):>10.2f} | {record['retransmissions']:>5} | "
            f"{record['selective_retx']:>8} | {record['fec_recovered']:>7}"
        )

    fec, simple = _mrpmb(by_mode["window_fec"]), _mrpmb(by_mode["simple"])
    assert fec > simple, (
        f"window_fec must beat the retries=2 re-flood on matches per "
        f"frame byte at loss >= 0.1: {fec:.3f} <= {simple:.3f}"
    )

    record = {
        "bench": "reliability_sweep",
        "spec": "reliability_city.json",
        "nodes": by_mode["simple"]["nodes"],
        "episodes": by_mode["simple"]["episodes"],
        "loss_rate": by_mode["simple"]["loss_rate"],
        "retries": 2,
        "matches": {mode: r["matches"] for mode, r in by_mode.items()},
        "frame_bytes": {mode: r["frame_bytes"] for mode, r in by_mode.items()},
        "matches_per_frame_mb": {
            mode: round(_mrpmb(r), 4) for mode, r in by_mode.items()
        },
        "fec_recovered": by_mode["window_fec"]["fec_recovered"],
        "selective_retx": by_mode["window"]["selective_retx"],
        "window_fec_beats_simple": True,
    }
    print()
    print("PERF_RECORD " + json.dumps(record))
    print()
    print(f"wrote {json_path}")
    print(f"wrote {md_path}")


if __name__ == "__main__":
    main()
