"""City-scale loss sweep: how match rate degrades (and retries recover it).

Runs ``examples/specs/lossy_city.json`` -- a 10k-node city where every
frame crosses a lossy channel -- over loss rates {0, 5%, 10%, 20%} with a
2-wave retransmission budget, then prints the match-rate-vs-loss table.
The same table (plus full frame counters) lands in the markdown report
the runner writes to ``results/``.

Equivalent CLI:

    sealed-bottle experiments run examples/specs/lossy_city.json

Everything is deterministic: frame fates hash from (seed, flow, link,
seq), so re-running reproduces these numbers exactly.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.experiments import run_plan

SPEC = Path(__file__).parent / "specs" / "lossy_city.json"


def main() -> None:
    json_path, md_path, records = run_plan(SPEC, "results", echo=print)

    print()
    print("match rate vs loss (10k nodes, 8 episodes, retries=2)")
    header = (
        f"{'loss':>6} | {'matches':>7} | {'match-rate':>10} | {'frames sent':>11} | "
        f"{'dropped':>8} | {'retx waves':>10} | {'p95 ms':>7}"
    )
    print(header)
    print("-" * len(header))
    for record in records:
        print(
            f"{record['loss_rate']:>6.2f} | {record['matches']:>7} | "
            f"{record['match_rate']:>10.2f} | "
            f"{record['frames_sent']:>11} | {record['frames_dropped']:>8} | "
            f"{record['retransmissions']:>10} | {record['latency_p95_ms']:>7.0f}"
        )
    print()
    print(f"wrote {json_path}")
    print(f"wrote {md_path}")


if __name__ == "__main__":
    main()
