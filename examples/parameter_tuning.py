#!/usr/bin/env python3
"""Choosing the remainder prime p: the efficiency/privacy dial.

The initiator controls p (Sec. IV-B1): a larger p makes the remainder
vector more selective (fewer users pay candidate-side work) but leaks more
bits of each attribute hash, shrinking the dictionary-profiling search
space.  This example sweeps p over a calibrated population and then asks
the recommender for the smallest prime meeting a load target under a
security floor.

Run:  python examples/parameter_tuning.py
"""

import random

from repro.analysis.reporting import render_series, render_table
from repro.analysis.tradeoffs import candidate_fraction, recommend_prime, security_bits
from repro.core import RequestProfile
from repro.core.matching import build_request
from repro.core.profile_vector import ParticipantVector
from repro.core.remainder import is_candidate
from repro.dataset import WeiboGenerator


def main() -> None:
    users = WeiboGenerator(n_users=1500, tag_vocabulary=15_000, seed=3).generate()
    cohort = [u for u in users if len(u.tags) == 6]
    target = cohort[0]
    request = RequestProfile(
        necessary=(), optional=[f"tag:{t}" for t in target.tags], beta=3,
        normalized=True,
    )
    vectors = [ParticipantVector.from_profile(u.profile()) for u in users]

    primes = [7, 11, 23, 53, 101]
    measured, predicted, security = [], [], []
    for p in primes:
        package, _ = build_request(request, protocol=2, p=p, rng=random.Random(1))
        hits = sum(
            1 for v in vectors
            if is_candidate(package.remainders, package.necessary_mask,
                            package.gamma, v.values, p)
        )
        measured.append(round(hits / len(vectors), 4))
        predicted.append(round(candidate_fraction(p, len(request), request.theta), 6))
        security.append(round(security_bits(1 << 20, p, len(request)), 1))

    print(render_series(
        "p sweep over a calibrated population (m_t=6, θ=0.5)",
        "p", primes,
        {
            "measured candidate fraction": measured,
            "predicted (1/p)^(m_t·θ)": predicted,
            "security bits (m=2^20)": security,
        },
    ))
    print("\nNote: real populations exceed the uniform-hash prediction because "
          "Zipf-popular tags collide more; the ordering across p is what matters.\n")

    rows = []
    for load_target in (0.05, 0.01, 0.001):
        choice = recommend_prime(
            6, 0.5, dictionary_size=1 << 20,
            max_candidate_fraction=load_target, min_security_bits=60.0,
        )
        rows.append([
            f"{load_target:.1%}", choice.p,
            f"{choice.candidate_fraction:.5f}", f"{choice.security_bits:.1f}",
        ])
    print(render_table(
        "recommend_prime(): smallest p for a candidate-load target (floor: 60 bits)",
        ["load target", "p", "achieved fraction", "security bits"],
        rows,
    ))


if __name__ == "__main__":
    main()
