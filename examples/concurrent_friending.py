"""Many users friending at once over one MANET.

The paper's evaluation imagines a plaza full of phones where *many* users
run the sealed-bottle protocol simultaneously.  This example floods eight
overlapping friending episodes -- staggered arrivals, distinct initiators,
one shared event queue -- through a 60-node network whose topology is
refreshed mid-run from a random-waypoint mobility model.

Run with:  PYTHONPATH=src python examples/concurrent_friending.py
"""

from __future__ import annotations

import random

from repro.core.attributes import Profile, RequestProfile
from repro.core.protocols import Initiator, Participant
from repro.network.engine import FriendingEngine
from repro.network.mobility import RandomWaypoint
from repro.network.simulator import AdHocNetwork

N_NODES = 60
N_EPISODES = 8
RADIO_RADIUS = 0.22
ARRIVAL_MS = 40


def main() -> None:
    rng = random.Random(7)
    node_ids = [f"n{i}" for i in range(N_NODES)]
    mobility = RandomWaypoint(node_ids, min_speed=0.02, max_speed=0.06, seed=7)
    adjacency = mobility.snapshot_topology(RADIO_RADIUS)

    # Eight "interest communities" of tags; every node owns one community's
    # tags plus private noise, so each episode finds its community members.
    participants = {}
    for i, node in enumerate(node_ids):
        community = i % N_EPISODES
        attrs = [f"c{community}:tag{j}" for j in range(3)] + [f"noise:{node}"]
        participants[node] = Participant(
            Profile(attrs, user_id=node, normalized=True), rng=rng
        )

    network = AdHocNetwork(adjacency, participants)
    launches = []
    for episode in range(N_EPISODES):
        initiator_node = node_ids[episode]  # a member of its own community
        request = RequestProfile(
            necessary=[f"c{episode}:tag0"],
            optional=[f"c{episode}:tag1", f"c{episode}:tag2"],
            beta=1,
            normalized=True,
        )
        launches.append((
            initiator_node,
            Initiator(request, protocol=2, validity_ms=2_000, rng=random.Random(100 + episode)),
        ))

    engine = FriendingEngine(
        network, mobility=mobility, radio_radius=RADIO_RADIUS, refresh_interval_ms=200
    )
    result = engine.run_staggered(launches, arrival_ms=ARRIVAL_MS)

    agg = result.aggregate
    print(f"{agg.episodes} episodes over {N_NODES} nodes "
          f"({result.topology_refreshes} topology refreshes)")
    print(f"simulated duration: {agg.sim_duration_ms} ms "
          f"({agg.episodes_per_sim_sec:.1f} episodes/sim-sec)")
    print(f"reply latency p50/p95: {agg.latency_p50_ms:.0f}/{agg.latency_p95_ms:.0f} ms")
    print(f"traffic: {agg.total.total_bytes} bytes "
          f"({agg.total.broadcasts} broadcasts, {agg.total.unicasts} reply hops)")
    print()
    for episode in result.episodes:
        matched = ", ".join(sorted(episode.matched_ids)) or "none"
        print(f"episode {episode.episode} from {episode.initiator_node} "
              f"(t={episode.started_at_ms}ms): matched {matched}")


if __name__ == "__main__":
    main()
