#!/usr/bin/env python3
"""The adversary gauntlet: every attack from Sec. II-B, run for real.

Demonstrates (1) dictionary profiling breaking Protocol 1 but not 2/3,
(2) a probing initiator drained to φ bits by Protocol 3's entropy budget,
(3) cheating match claims rejected by verifiability, (4) MITM failing to
splice the channel, and (5) a DoS flood absorbed by rate limiting.

Run:  python examples/malicious_defenses.py
"""

import random

from repro.attacks import (
    CheatingParticipant,
    DictionaryAttacker,
    DosAttacker,
    ManInTheMiddle,
    ProbingInitiator,
)
from repro.core import (
    AttributeDistribution,
    EntropyPolicy,
    Initiator,
    Participant,
    Profile,
    RequestProfile,
)
from repro.network import RateLimiter

UNIVERSE = [f"tag:word{i}" for i in range(40)]


def main() -> None:
    rng = random.Random(5)
    request = RequestProfile.exact(UNIVERSE[:3], normalized=True)

    print("=" * 64)
    print("1. Dictionary profiling (malicious participant, full dictionary)")
    for protocol in (1, 2):
        initiator = Initiator(request, protocol=protocol, rng=rng)
        package = initiator.create_request(now_ms=0)
        result = DictionaryAttacker(UNIVERSE).recover_request(package)
        if result.succeeded:
            print(f"  Protocol {protocol}: BROKEN in {result.guesses} guesses -> "
                  f"{sorted(result.recovered)}")
        else:
            print(f"  Protocol {protocol}: safe -- {result.candidate_combinations} "
                  "combinations remain indistinguishable (no oracle)")

    print()
    print("2. Probing initiator vs Protocol 3 entropy budget")
    victim_profile = Profile(UNIVERSE[:3], user_id="victim", normalized=True)
    distribution = AttributeDistribution.uniform({"tag": 1 << 16})  # 16 bits/attr
    for phi, label in ((1_000.0, "no budget (like Protocol 2)"), (16.0, "phi = 16 bits")):
        victim = Participant(
            victim_profile, entropy_policy=EntropyPolicy(distribution, phi=phi)
        )
        probe = ProbingInitiator(UNIVERSE[:10], protocol=3).probe(victim)
        leaked = [a for a, owned in probe.items() if owned]
        print(f"  {label}: attacker learned {len(leaked)} attribute(s)")

    print()
    print("3. Cheating match claims vs verifiability")
    initiator = Initiator(request, protocol=2, rng=rng)
    package = initiator.create_request(now_ms=0)
    cheater = CheatingParticipant()
    for attempt, reply in (
        ("random forgery", cheater.forge_random_reply(package)),
        ("plaintext ACK replay", cheater.forge_plaintext_guess_reply(package)),
        ("1024-element flood", cheater.flood_reply(package)),
    ):
        accepted = initiator.handle_reply(reply, now_ms=1)
        print(f"  {attempt}: {'ACCEPTED (!)' if accepted else 'rejected'} "
              f"({initiator.rejected[-1].reason if initiator.rejected else '-'})")

    print()
    print("4. Man in the middle on channel establishment (wire frames)")
    from repro.core.wire import decode_frame, decode_payload, encode_request_frame, encode_reply_frame

    mitm = ManInTheMiddle()
    initiator = Initiator(request, protocol=2, rng=rng)
    # The attacker sees and forwards the actual broadcast datagram.
    request_frame = mitm.intercept_request(
        encode_request_frame(initiator.create_request(now_ms=0))
    )
    package = decode_payload(decode_frame(request_frame))
    matcher = Participant(Profile(UNIVERSE[:3], user_id="match", normalized=True), rng=rng)
    genuine = matcher.handle_request(package, now_ms=1)
    forged_frame = mitm.substitute_reply(encode_reply_frame(genuine))
    forged = decode_payload(decode_frame(forged_frame))
    print(f"  forged reply accepted: {initiator.handle_reply(forged, now_ms=2) is not None}")
    print(f"  genuine reply accepted: {initiator.handle_reply(genuine, now_ms=2) is not None}")
    print(f"  attacker read x: {mitm.outcome.read_x}")

    print()
    print("5. DoS flood vs per-neighbour rate limiting")
    outcome = DosAttacker(seed=1).flood_node(
        RateLimiter(max_events=5, window_ms=10_000), n_requests=1000, interval_ms=10
    )
    print(f"  {outcome.sent} junk requests -> {outcome.processed} processed, "
          f"{outcome.dropped} dropped ({outcome.absorption_ratio:.1%} absorbed)")


if __name__ == "__main__":
    main()
