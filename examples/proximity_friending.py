#!/usr/bin/env python3
"""Location-private vicinity search over a multi-hop ad-hoc network.

Scenario (paper Sec. III-D): users walk around a campus carrying phones
that form a WiFi-Direct mesh.  An initiator searches for climbing partners
*within ~30 m* without revealing her own coordinates: locations are snapped
to a hexagonal lattice and the overlap of vicinity regions becomes a fuzzy
profile match.

Run:  python examples/proximity_friending.py
"""

import random

from repro.core import Initiator, Participant, Profile
from repro.core.location import LatticeSpec, vicinity_request
from repro.network import AdHocNetwork, random_geometric_topology

MESH_SIZE = 40
RADIO_RANGE = 0.25  # unit square
CAMPUS_SCALE = 500.0  # metres
CELL = 10.0  # lattice cell size d, metres
SEARCH_RANGE = 30.0  # vicinity D, metres
OVERLAP_THRESHOLD = 0.45  # Θ


def main() -> None:
    rng = random.Random(7)
    spec = LatticeSpec(d=CELL)

    adjacency, positions = random_geometric_topology(MESH_SIZE, RADIO_RANGE, seed=3)
    nodes = list(adjacency)
    initiator_node = nodes[0]
    ix, iy = (positions[initiator_node][0] * CAMPUS_SCALE,
              positions[initiator_node][1] * CAMPUS_SCALE)

    # A handful of people happen to be physically close to the initiator
    # (radio mesh position and person position are independent things).
    nearby_nodes = set(rng.sample(nodes[1:], 4))

    # Every phone's profile = its vicinity lattice points (location privacy:
    # only lattice-point hashes are ever used, never raw coordinates).
    participants = {}
    metres = {}
    for node in nodes:
        if node in nearby_nodes:
            x = ix + rng.uniform(-0.6, 0.6) * SEARCH_RANGE
            y = iy + rng.uniform(-0.6, 0.6) * SEARCH_RANGE
        else:
            x, y = positions[node][0] * CAMPUS_SCALE, positions[node][1] * CAMPUS_SCALE
        metres[node] = (x, y)
        if node == initiator_node:
            participants[node] = None
            continue
        attrs = spec.vicinity_attributes(x, y, SEARCH_RANGE)
        participants[node] = Participant(
            Profile(attrs, user_id=node, normalized=True), rng=rng
        )

    request = vicinity_request(spec, ix, iy, SEARCH_RANGE, theta=OVERLAP_THRESHOLD)
    print(f"Initiator at ({ix:.0f}m, {iy:.0f}m); vicinity region = "
          f"{len(request)} lattice points, threshold Θ = {OVERLAP_THRESHOLD}")

    initiator = Initiator(request, protocol=1, p=1009, rng=rng)
    network = AdHocNetwork(adjacency, participants, rng=rng)
    result = network.run_friending(initiator_node, initiator)

    print(f"Flood reached {result.metrics.nodes_reached} phones with "
          f"{result.metrics.broadcasts} broadcasts "
          f"({result.metrics.total_bytes} bytes on air)")

    found = set(result.matched_ids)
    print("\nWho replied (and their true distances -- never transmitted):")
    for node in sorted(nodes[1:], key=lambda n: _dist(metres[n], (ix, iy))):
        distance = _dist(metres[node], (ix, iy))
        tag = "MATCH" if node in found else "     "
        if distance < 3 * SEARCH_RANGE:
            print(f"  [{tag}] {node}: {distance:5.1f} m")
    nearby = [n for n in nodes[1:] if _dist(metres[n], (ix, iy)) <= SEARCH_RANGE * 0.7]
    missed = [n for n in nearby if n not in found]
    print(f"\n{len(found)} matches; {len(missed)} clearly-nearby phones missed")


def _dist(a, b) -> float:
    return ((a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2) ** 0.5


if __name__ == "__main__":
    main()
