"""City-scale friending: a 10k-phone city through the experiment runner.

The grid-indexed topology (``SpatialGrid``, cell size = radio range) is
what makes this population size practical: building the radio graph and
refreshing it as phones move costs O(n · k) instead of the all-pairs
O(n²) scan.  This example runs the worked spec from ``docs/experiments.md``
(``examples/specs/city_10k.json``) — one sealed friending episode flooding
through 10 000 moving phones, 1% of them cheating attackers — and writes
the JSON artifact plus the markdown report.

Run with:  PYTHONPATH=src python examples/city_scale.py [--nodes N] [--out-dir DIR]

The same thing via the CLI:

    PYTHONPATH=src python -m repro.cli experiments run \
        examples/specs/city_10k.json --out-dir results
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.analysis.experiments import load_plan, run_plan

SPEC_PATH = Path(__file__).parent / "specs" / "city_10k.json"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--nodes", type=int, default=None,
        help="override the spec's population size (default: the spec's 10000)",
    )
    parser.add_argument("--out-dir", default="results")
    args = parser.parse_args()

    raw = json.loads(SPEC_PATH.read_text())
    if args.nodes is not None:
        raw["nodes"] = args.nodes
        raw["name"] = f"city-{args.nodes}"
    plan = load_plan(raw)
    spec = plan.specs[0]
    print(f"{spec.name}: {spec.nodes} phones, protocol {spec.protocol}, "
          f"{spec.mobility} mobility, radio radius {spec.radio_radius}")

    json_path, md_path, records = run_plan(raw, args.out_dir, echo=print)
    record = records[0]
    print()
    print(f"topology build: {record['topology_seconds']}s "
          f"(grid-indexed; naive all-pairs is O(n^2))")
    print(f"flood reached {record['nodes_reached']} phones, "
          f"{record['replies']} replies, {record['matches']} verified matches, "
          f"{record['rejected_replies']} forged/oversized replies rejected")
    print(f"{record['topology_refreshes']} incremental topology refreshes mid-run")
    print()
    print(f"wrote {json_path}")
    print(f"wrote {md_path}")


if __name__ == "__main__":
    main()
